#ifndef HYPO_TM_MACHINES_LIBRARY_H_
#define HYPO_TM_MACHINES_LIBRARY_H_

#include "tm/machine.h"

namespace hypo {

/// Small machines used by tests, the §5.1 encoder experiments, and the §6
/// expressibility pipeline. Alphabet convention: 0 = blank, 1 = '0',
/// 2 = '1' (so tape symbol s renders as the bitmap digit s-1).
constexpr int kSym0 = 1;
constexpr int kSym1 = 2;

/// Deterministic: accepts iff the cell under the initial head position
/// holds '1'. Two states; used as the simplest bottom oracle.
MachineSpec MakeFirstCellIsOneMachine();

/// Deterministic: scans right over '0'/'1' cells and accepts on the first
/// blank iff the number of '1's seen is even. The machine that decides the
/// PARITY of a bitmap block — the classic generic query that is not
/// expressible in Datalog without order (Example 6 / §6.2.3).
MachineSpec MakeParityMachine(bool accept_even = true);

/// Deterministic: scans right and accepts iff some '1' appears before the
/// first blank.
MachineSpec MakeContainsOneMachine();

/// Non-deterministic: from the start cell, guesses to accept or to loop
/// one step then accept only if the first cell is '1'. Accepts everything
/// (some branch accepts), exercising branch exploration.
MachineSpec MakeGuessMachine();

/// Oracle user: copies its own work-tape cell 0 onto the oracle tape,
/// queries the oracle, and accepts iff the oracle answers yes. With
/// MakeFirstCellIsOneMachine below it, the cascade accepts iff the input
/// starts with '1' — a two-level cascade whose answer is easy to predict.
MachineSpec MakeAskOracleMachine(bool accept_on_yes = true);

/// Oracle user for Σ2-style behavior: writes '0' to the oracle tape (the
/// oracle will answer no) and accepts iff the oracle answers *no*,
/// exercising the negation-by-failure boundary between strata.
MachineSpec MakeExpectNoMachine();

/// Oracle user that copies its whole input (up to the first blank) onto
/// the oracle tape, then queries; accepts per `accept_on_yes`. Stacked on
/// MakeContainsOneMachine it gives a genuine two-stratum pipeline: the
/// lower machine scans a copy of the bitmap the upper machine saw.
MachineSpec MakeCopyAndAskMachine(bool accept_on_yes);

}  // namespace hypo

#endif  // HYPO_TM_MACHINES_LIBRARY_H_
