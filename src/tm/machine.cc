#include "tm/machine.h"

namespace hypo {

namespace {

Status Fail(const MachineSpec& m, const std::string& what) {
  return Status::InvalidArgument("machine '" + m.name + "': " + what);
}

bool StateInRange(const MachineSpec& m, int s) {
  return s >= 0 && s < m.num_states;
}

}  // namespace

Status ValidateMachine(const MachineSpec& machine) {
  if (machine.num_states <= 0) return Fail(machine, "no states");
  if (machine.num_symbols <= 0) return Fail(machine, "no symbols");
  if (!StateInRange(machine, machine.initial_state)) {
    return Fail(machine, "initial state out of range");
  }
  if (machine.accepting_states.empty()) {
    return Fail(machine, "no accepting states");
  }
  for (int a : machine.accepting_states) {
    if (!StateInRange(machine, a)) {
      return Fail(machine, "accepting state out of range");
    }
  }
  if (machine.UsesOracle()) {
    if (!StateInRange(machine, machine.query_state) ||
        !StateInRange(machine, machine.yes_state) ||
        !StateInRange(machine, machine.no_state)) {
      return Fail(machine, "oracle protocol states (q?, q_y, q_n) must all "
                           "be valid states");
    }
  }
  for (const Transition& t : machine.transitions) {
    if (!StateInRange(machine, t.state) ||
        !StateInRange(machine, t.next_state)) {
      return Fail(machine, "transition state out of range");
    }
    if (t.read < 0 || t.read >= machine.num_symbols || t.write < 0 ||
        t.write >= machine.num_symbols) {
      return Fail(machine, "transition symbol out of range");
    }
    if (t.move_work < -1 || t.move_work > 1 || t.move_oracle < -1 ||
        t.move_oracle > 1) {
      return Fail(machine, "head move must be -1, 0 or +1");
    }
    if (machine.UsesOracle()) {
      if (t.state == machine.query_state) {
        return Fail(machine,
                    "no explicit transitions out of q?; the oracle protocol "
                    "moves the machine to q_y or q_n");
      }
      // The oracle head is active whenever the machine runs (§5.1.4), so
      // every step must (re)write the oracle cell or the encoding's frame
      // axiom would leave it without a symbol.
      if (t.oracle_write < 0 || t.oracle_write >= machine.num_symbols) {
        return Fail(machine,
                    "oracle-using machines must write the oracle tape on "
                    "every transition");
      }
    } else {
      if (t.oracle_write != -1 || t.move_oracle != 0) {
        return Fail(machine,
                    "machine without q? must not touch the oracle tape");
      }
    }
  }
  return Status::OK();
}

Status ValidateCascade(const std::vector<MachineSpec>& machines) {
  if (machines.empty()) {
    return Status::InvalidArgument("empty machine cascade");
  }
  for (size_t i = 0; i < machines.size(); ++i) {
    HYPO_RETURN_IF_ERROR(ValidateMachine(machines[i]));
    if (machines[i].UsesOracle() && i + 1 == machines.size()) {
      return Status::InvalidArgument(
          "machine '" + machines[i].name +
          "' uses an oracle but is the bottom of the cascade");
    }
  }
  return Status::OK();
}

}  // namespace hypo
