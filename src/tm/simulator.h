#ifndef HYPO_TM_SIMULATOR_H_
#define HYPO_TM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "base/statusor.h"
#include "tm/machine.h"

namespace hypo {

/// Ground-truth execution of an oracle-machine cascade, mirroring the
/// §5.1 rulebase encoding step for step:
///
///  * All machines share one clock of `time_bound` ticks (the encoding's
///    counter 0..n^l-1) and tapes of `tape_length` cells; an oracle run
///    starts at its caller's current tick and must finish within the
///    bound, after which the caller resumes one tick later.
///  * Writes land under the heads before the moves; a move off either
///    tape end, or running out of clock, kills that branch.
///  * Acceptance is §5.1.2's accepting-id recursion: a branch accepts as
///    soon as its control state is accepting.
///  * An oracle invocation runs the machine below on a *copy* of the
///    oracle tape (the encoding retracts the oracle's hypothetical
///    computation path), with its own oracle tape freshly blank.
///
/// `max_branches` bounds the total non-deterministic branches explored,
/// converting exponential searches into clean ResourceExhausted errors.
class CascadeSimulator {
 public:
  /// `machines[0]` is M_k (receives the input); the last entry is M_1.
  CascadeSimulator(std::vector<MachineSpec> machines, int tape_length,
                   int time_bound);

  /// Validates the cascade and the geometry. Call before Accepts.
  Status Init();

  /// Does the composite machine accept `input` (written into the leftmost
  /// cells of M_k's work tape, blank-padded)?
  StatusOr<bool> Accepts(const std::vector<int>& input);

  /// Branches explored by the last Accepts call.
  int64_t branches_explored() const { return branches_; }

  void set_max_branches(int64_t v) { max_branches_ = v; }

 private:
  /// Runs machine `index` from `start_time` on `work` (modified in
  /// place); returns true if some branch accepts.
  StatusOr<bool> Run(size_t index, std::vector<int>* work, int start_time);

  /// Depth-first search over the transition relation.
  StatusOr<bool> Search(size_t index, std::vector<int>* work,
                        std::vector<int>* oracle, int state, int work_head,
                        int oracle_head, int time);

  std::vector<MachineSpec> machines_;
  int tape_length_;
  int time_bound_;
  int64_t max_branches_ = 50'000'000;
  int64_t branches_ = 0;
  bool initialized_ = false;
};

}  // namespace hypo

#endif  // HYPO_TM_SIMULATOR_H_
