#include "server/protocol.h"

#include <istream>
#include <limits>
#include <ostream>
#include <vector>

#include "base/string_util.h"

namespace hypo {

namespace {

/// Splits "cmd rest-of-line" on the first whitespace run.
void SplitCommand(std::string_view line, std::string_view* cmd,
                  std::string_view* arg) {
  size_t space = line.find_first_of(" \t");
  if (space == std::string_view::npos) {
    *cmd = line;
    *arg = std::string_view();
    return;
  }
  *cmd = line.substr(0, space);
  *arg = StripWhitespace(line.substr(space + 1));
}

void WriteError(std::ostream& out, const Status& status) {
  out << "err " << status << "\n";
}

void WriteMutation(std::ostream& out, const MutationOutcome& outcome) {
  out << "ok epoch=" << outcome.epoch << " changed=" << outcome.changed
      << "\n";
}

void WriteQuery(std::ostream& out, const QueryOutcome& outcome) {
  if (outcome.boolean) {
    out << "ok " << (outcome.proven ? "yes" : "no") << "\n";
    return;
  }
  out << "ok " << outcome.answers.size() << " answers\n";
  for (const auto& row : outcome.answers) {
    out << "-";
    for (size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? " " : ", ") << outcome.var_names[i] << "=" << row[i];
    }
    out << "\n";
  }
}

/// `set key=value` with a strictly parsed non-negative value; 0 restores
/// the server default (QuerySpec treats negative as "default").
bool HandleSet(std::string_view arg, QuerySpec* spec, std::ostream& out) {
  size_t eq = arg.find('=');
  if (eq == std::string_view::npos) {
    WriteError(out, Status::InvalidArgument(
                        "set needs key=value (timeout_ms, max_memory_mb)"));
    return false;
  }
  std::string_view key = StripWhitespace(arg.substr(0, eq));
  auto value = ParseInt(StripWhitespace(arg.substr(eq + 1)), 0,
                        std::numeric_limits<int32_t>::max());
  if (!value.ok()) {
    WriteError(out, value.status());
    return false;
  }
  if (key == "timeout_ms") {
    spec->timeout_micros = *value == 0 ? -1 : *value * 1000;
  } else if (key == "max_memory_mb") {
    spec->max_memory_bytes = *value == 0 ? -1 : *value * 1024 * 1024;
  } else {
    WriteError(out, Status::InvalidArgument("unknown set key \"" +
                                            std::string(key) + "\""));
    return false;
  }
  out << "ok set\n";
  return true;
}

}  // namespace

int RunSession(QueryServer* server, std::istream& in, std::ostream& out,
               const std::atomic<bool>* stop) {
  QuerySpec spec;
  bool in_batch = false;
  std::vector<QueryServer::Mutation> batch;

  std::string raw;
  while (!(stop != nullptr && stop->load(std::memory_order_relaxed)) &&
         std::getline(in, raw)) {
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    std::string_view cmd, arg;
    SplitCommand(line, &cmd, &arg);

    if (cmd == "query") {
      auto outcome = server->Query(arg, spec);
      if (!outcome.ok()) {
        WriteError(out, outcome.status());
      } else {
        WriteQuery(out, *outcome);
      }
    } else if (cmd == "insert" || cmd == "retract") {
      auto mutation = server->ParseMutation(arg, cmd == "insert");
      if (!mutation.ok()) {
        WriteError(out, mutation.status());
        continue;
      }
      if (in_batch) {
        batch.push_back(std::move(*mutation));
        out << "ok queued\n";
        continue;
      }
      auto outcome = server->ApplyBatch({std::move(*mutation)});
      if (!outcome.ok()) {
        WriteError(out, outcome.status());
      } else {
        WriteMutation(out, *outcome);
      }
    } else if (cmd == "begin") {
      if (in_batch) {
        WriteError(out, Status::FailedPrecondition("already in a batch"));
        continue;
      }
      in_batch = true;
      batch.clear();
      out << "ok batch\n";
    } else if (cmd == "commit") {
      if (!in_batch) {
        WriteError(out, Status::FailedPrecondition("no batch to commit"));
        continue;
      }
      in_batch = false;
      auto outcome = server->ApplyBatch(batch);
      batch.clear();
      if (!outcome.ok()) {
        WriteError(out, outcome.status());
      } else {
        WriteMutation(out, *outcome);
      }
    } else if (cmd == "abort") {
      if (!in_batch) {
        WriteError(out, Status::FailedPrecondition("no batch to abort"));
        continue;
      }
      in_batch = false;
      batch.clear();
      out << "ok aborted\n";
    } else if (cmd == "set") {
      HandleSet(arg, &spec, out);
    } else if (cmd == "epoch") {
      out << "ok epoch=" << server->epoch() << "\n";
    } else if (cmd == "stats") {
      QueryServer::Counters c = server->counters();
      out << "ok epoch=" << server->epoch() << " queries=" << c.queries
          << " mutations=" << c.mutation_batches
          << " noop_mutations=" << c.noop_batches
          << " base_facts=" << c.base_facts
          << " base_deltas=" << c.repair.base_deltas
          << " strata_repaired=" << c.repair.strata_repaired
          << " strata_recomputed=" << c.repair.strata_recomputed
          << " overdeleted=" << c.repair.facts_overdeleted
          << " rederived=" << c.repair.facts_rederived
          << " arena_bytes=" << c.arena_bytes
          << " sorted_probes=" << c.sorted_probes
          << " index_sort_micros=" << c.index_sort_micros
          << " cache_hits_cross_query=" << c.cache_hits_cross_query
          << " contexts_reused=" << c.contexts_reused
          << " restricted_rejections=" << c.restricted_rejections
          << " vm_programs_compiled=" << c.vm_programs_compiled
          << " vm_ops_executed=" << c.vm_ops_executed
          << " journal_appends=" << c.journal_appends
          << " fsyncs=" << c.fsyncs << " checkpoints=" << c.checkpoints
          << " recoveries=" << c.recoveries
          << " torn_records_dropped=" << c.torn_records_dropped
          << " read_only=" << (c.read_only ? 1 : 0) << "\n";
    } else if (cmd == "checkpoint") {
      Status s = server->Checkpoint();
      if (!s.ok()) {
        WriteError(out, s);
      } else {
        out << "ok checkpoint epoch=" << server->epoch() << "\n";
      }
    } else if (cmd == "explain") {
      std::string plans = server->Explain();
      // One `-` line per plan line, so scripted sessions can pair the
      // whole block with the `ok` that introduces it.
      size_t lines = 0;
      for (char ch : plans) lines += ch == '\n';
      out << "ok " << lines << " lines\n";
      std::string_view rest = plans;
      while (!rest.empty()) {
        size_t nl = rest.find('\n');
        out << "- " << rest.substr(0, nl) << "\n";
        if (nl == std::string_view::npos) break;
        rest.remove_prefix(nl + 1);
      }
    } else if (cmd == "ping") {
      out << "ok pong\n";
    } else if (cmd == "shutdown") {
      out << "ok bye\n";
      return 0;
    } else {
      WriteError(out, Status::InvalidArgument("unknown command \"" +
                                              std::string(cmd) + "\""));
    }
    out.flush();
  }
  return 0;
}

}  // namespace hypo
