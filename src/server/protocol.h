#ifndef HYPO_SERVER_PROTOCOL_H_
#define HYPO_SERVER_PROTOCOL_H_

#include <atomic>
#include <iosfwd>
#include <string>
#include <string_view>

#include "server/query_server.h"

namespace hypo {

/// The hypo_serve line protocol. One command per line; every command
/// produces at least one response line beginning `ok` or `err`, so a
/// scripted session can be checked by pairing requests with responses.
///
///   query <premises>      evaluate; ground: `ok yes|no`; with variables:
///                         `ok N answers` then N lines `- X=a, Y=b`
///   insert <fact>         epoch turn; `ok epoch=E changed=K`
///   retract <fact>        epoch turn; `ok epoch=E changed=K`
///   begin                 start a batch; inserts/retracts queue (`ok queued`)
///   commit                apply the batch atomically; `ok epoch=E changed=K`
///   abort                 drop the batch; `ok aborted`
///   set timeout_ms=N      per-session governance override; `ok set`
///   set max_memory_mb=N   (0 clears back to the server default)
///   epoch                 `ok epoch=E`
///   stats                 `ok epoch=E queries=... read_only=0|1`
///   checkpoint            durably snapshot the current epoch and rotate
///                         the journal; `ok checkpoint epoch=E` (err when
///                         durability is off or the server is read-only)
///   explain               `ok N lines` then N lines `- <plan text>`:
///                         premise order, probe masks, and disassembled
///                         bytecode for every rule at the current epoch
///   ping                  `ok pong`
///   shutdown              `ok bye`, session ends
///
/// Blank lines and lines starting with `#` are ignored (script comments).
/// Unknown commands and malformed arguments answer `err <Status>`.
///
/// Drives `server` from `in` to EOF or `shutdown`, writing responses to
/// `out`. Returns the process exit code (0 on clean shutdown/EOF). The
/// loop itself is sequential — concurrency lives in QueryServer, which
/// any number of sessions could share.
///
/// `stop`, when non-null, is polled between commands: a signal handler
/// sets it (hypo_serve wires SIGINT/SIGTERM here) and the session ends
/// as if EOF had been read — the caller then drains via
/// QueryServer::Shutdown. Signals interrupting a blocked read also end
/// the loop (the handlers are installed without SA_RESTART).
int RunSession(QueryServer* server, std::istream& in, std::ostream& out,
               const std::atomic<bool>* stop = nullptr);

}  // namespace hypo

#endif  // HYPO_SERVER_PROTOCOL_H_
