#ifndef HYPO_SERVER_QUERY_SERVER_H_
#define HYPO_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "ast/rulebase.h"
#include "base/statusor.h"
#include "db/database.h"
#include "engine/engine.h"
#include "server/journal.h"

namespace hypo {

/// Crash-safety configuration (DESIGN.md "Durability & recovery").
/// With an empty `data_dir` the server is purely in-memory, exactly as
/// before; with one, every committed mutation batch is written ahead to
/// an append-only journal, periodic checkpoints bound replay time, and
/// Create() recovers the committed state from disk on restart.
struct DurabilityOptions {
  /// Directory owning the journal and checkpoint files. Created if
  /// absent. Empty = durability off.
  std::string data_dir;

  /// When journal appends reach stable storage (see Journal::FsyncPolicy):
  /// "always" survives power loss per batch, "group" amortizes the fsync
  /// over `fsync_group_size` batches, "off" leaves flushing to
  /// checkpoints and shutdown.
  Journal::FsyncPolicy fsync_policy = Journal::FsyncPolicy::kAlways;
  int fsync_group_size = 8;

  /// Write a checkpoint (and rotate the journal) every N epoch turns;
  /// 0 = only at Shutdown or an explicit Checkpoint() call.
  int64_t checkpoint_every = 0;

  /// A failed journal append is retried this many times (with a short
  /// backoff) before the server gives up and degrades to read-only.
  int append_retries = 2;
  int retry_backoff_ms = 1;
};

/// Configuration for a resident QueryServer.
struct ServerOptions {
  /// Engine family every pooled engine is built from:
  /// "tabled" | "stratified" | "bottomup".
  std::string engine_name = "tabled";

  /// Number of pooled engines == maximum queries in flight at once.
  int pool_size = 2;

  /// Template options for every pooled engine. The governance fields
  /// (timeout_micros, max_memory_bytes) become per-query defaults that a
  /// QuerySpec may override; `demand` must be false (demand rewrites the
  /// rulebase per query, which fights the shared-model repair the server
  /// exists for — Create rejects it).
  EngineOptions engine_options;

  /// Share settled goal verdicts and whole context models across the pool
  /// through a server-lifetime MemoBoard (epoch-versioned, LRU-bounded by
  /// `cache_bytes`). Off = every engine keeps only its private memos —
  /// the escape hatch when cross-engine reuse is suspected of a wrong
  /// answer or the board's memory is needed back.
  bool cross_query_cache = true;
  int64_t cache_bytes = 256ll << 20;

  /// See DurabilityOptions; off (in-memory only) by default.
  DurabilityOptions durability;
};

/// Per-query governance overrides; negative fields fall back to the
/// server-wide defaults from ServerOptions::engine_options.
struct QuerySpec {
  int64_t timeout_micros = -1;
  int64_t max_memory_bytes = -1;
};

/// One answered query. Variable bindings are rendered to strings under
/// the server's symbol lock, so the caller never touches the shared
/// SymbolTable.
struct QueryOutcome {
  bool boolean = false;  // num_vars == 0: `proven` is the answer.
  bool proven = false;
  std::vector<std::string> var_names;
  /// One row per answer; row[i] is the constant bound to var_names[i].
  std::vector<std::vector<std::string>> answers;
  int64_t epoch = 0;       // Epoch the query evaluated against.
  EngineStats stats;       // This query's engine counters.
};

/// One applied mutation batch.
struct MutationOutcome {
  /// Net base-database changes (a batch that inserts then retracts the
  /// same fact nets to zero and does not turn the epoch).
  int64_t changed = 0;
  int64_t epoch = 0;  // Epoch after the batch.
};

/// A long-lived query server: one shared base Database + rulebase, a pool
/// of warm engines answering concurrent queries, and epoch-turn mutations
/// that repair the engines' memoized models incrementally instead of
/// rebuilding them (DESIGN.md "Resident server & incremental
/// maintenance").
///
/// Concurrency discipline:
///  * `epoch_mu_` (shared_mutex): queries hold it shared for their whole
///    evaluation; a mutation batch takes it exclusive, so it observes a
///    quiesced pool — no engine is mid-query while the base moves.
///  * Between epochs the base stays sealed (SealIndexes): pooled engines
///    probe its column indexes concurrently without mutating index state.
///    The epoch turn unseals (implicitly, via Insert/Retract), applies
///    the batch, re-prepares every engine-declared probe signature, and
///    reseals before readers return.
///  * `symbols_mu_` (shared_mutex): parsing interns symbols (exclusive);
///    evaluation and answer rendering only read them (shared).
///
/// Thread-safe: any number of threads may call Query/Insert/Retract/
/// ApplyBatch concurrently.
class QueryServer {
 public:
  /// A single base-fact mutation, parsed and validated up front so batch
  /// errors surface at the offending line, not at commit.
  struct Mutation {
    bool insert = false;  // false: retract.
    Fact fact;
  };

  /// Builds a server over `program` (rules + initial facts in the surface
  /// syntax). Initializes every pooled engine eagerly and seals the base,
  /// so the first query pays no cold-start beyond its own model.
  ///
  /// With durability configured, a data dir holding committed state takes
  /// precedence over `program`: the persisted program text (the one the
  /// relations were built against) is re-parsed, the latest checkpoint is
  /// loaded, and the journal tail is replayed — the server resumes at the
  /// epoch it last acknowledged. A fresh data dir seeds an initial
  /// checkpoint from `program` before serving, so recovery always finds
  /// one. Mid-journal corruption or a damaged newest checkpoint fails
  /// Create with kDataLoss; a torn final journal record is dropped (and
  /// counted in `torn_records_dropped`), not an error.
  static StatusOr<std::unique_ptr<QueryServer>> Create(
      std::string_view program, ServerOptions options);

  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Parses and answers one query on a pooled engine under its own
  /// governance budget. Blocks while all engines are busy.
  StatusOr<QueryOutcome> Query(std::string_view text,
                               const QuerySpec& spec = QuerySpec());

  /// Parses `fact_text` as a ground atom ("edge(a, b)") into a Mutation.
  StatusOr<Mutation> ParseMutation(std::string_view fact_text, bool insert);

  /// Convenience single-fact epoch turns.
  StatusOr<MutationOutcome> Insert(std::string_view fact_text);
  StatusOr<MutationOutcome> Retract(std::string_view fact_text);

  /// Applies a batch atomically: one exclusive epoch turn, one BaseDelta,
  /// one incremental repair per engine. Duplicate inserts and absent
  /// retracts are no-ops; a batch whose net effect is empty does not turn
  /// the epoch. On repair failure the affected engines have dropped their
  /// memos (next query recomputes from the new base) and the error is
  /// returned — the server stays serviceable.
  StatusOr<MutationOutcome> ApplyBatch(const std::vector<Mutation>& batch);

  int64_t epoch() const;

  /// True once a journal failure has flipped the server to read-only:
  /// mutations answer kUnavailable, queries keep serving the last
  /// committed epoch. Restarting the process (recovery) restores
  /// read-write service — the journal holds every acknowledged batch.
  bool read_only() const;

  /// Writes a checkpoint of the current epoch and rotates the journal.
  /// FailedPrecondition when durability is off, Unavailable when
  /// read-only. A checkpoint-write failure leaves the previous
  /// checkpoint + journal authoritative (not a degradation); a failure
  /// rotating to the NEW journal does degrade to read-only.
  Status Checkpoint();

  /// Graceful drain: takes the epoch lock exclusively (every in-flight
  /// query finishes first), flushes the journal, and writes a final
  /// checkpoint. Idempotent; mutations after Shutdown are rejected. With
  /// durability off (or read-only — the journal already holds all
  /// committed state) this is just the drain.
  Status Shutdown();

  /// The base database as sorted `pred(a, b)` text lines, one per fact —
  /// the canonical logical state. Two servers are equivalent iff their
  /// canonical states match; the durability tests compare a recovered
  /// process against a never-crashed oracle through this (dense symbol
  /// ids may differ across the two processes, text never does).
  std::string CanonicalState() const;

  /// Monotone service counters plus the cumulative incremental-repair
  /// stats accumulated across every epoch turn.
  struct Counters {
    int64_t queries = 0;
    int64_t mutation_batches = 0;
    int64_t noop_batches = 0;
    int64_t base_facts = 0;
    int64_t arena_bytes = 0;        // Columnar footprint of the base.
    int64_t sorted_probes = 0;      // Sorted-range probes against the base.
    int64_t index_sort_micros = 0;  // Time spent sorting base indexes.
    /// Cross-query MemoBoard reuse, accumulated over every served query.
    int64_t cache_hits_cross_query = 0;
    int64_t contexts_reused = 0;
    /// Queries rejected up front for hypothesizing about a predicate not
    /// declared `assumable`/`retractable` (restricted predicates).
    int64_t restricted_rejections = 0;
    /// Bytecode executor totals: programs compiled (engine inits, epoch
    /// recompiles, per-query compiles) and VM ops retired.
    int64_t vm_programs_compiled = 0;
    int64_t vm_ops_executed = 0;
    /// Durability: journal records appended and fsyncs issued (across
    /// rotations), checkpoints written, whether this process recovered
    /// persisted state at startup, torn records recovery dropped, and
    /// the read-only degradation flag. All zero with durability off.
    int64_t journal_appends = 0;
    int64_t fsyncs = 0;
    int64_t checkpoints = 0;
    int64_t recoveries = 0;
    int64_t torn_records_dropped = 0;
    bool read_only = false;
    EngineStats repair;  // base_deltas, strata_repaired, overdeleted, ...
  };
  Counters counters() const;

  /// Premise order, probe masks, and disassembled bytecode for every rule
  /// of a pooled engine (they are interchangeable — all compiled from the
  /// same rulebase at the same epoch). Blocks while all engines are busy.
  std::string Explain();

  const ServerOptions& options() const { return options_; }

 private:
  QueryServer(ServerOptions options, std::shared_ptr<SymbolTable> symbols,
              RuleBase rules, Database base);

  Status InitEngines();

  /// Renders `delta` to symbol names and appends it as the record
  /// committing `epoch_ + 1`, with bounded retry/backoff. Epoch lock
  /// held exclusive.
  Status JournalAppend(const BaseDelta& delta);

  /// Checkpoint + journal rotation + GC, epoch lock held exclusive.
  Status CheckpointLocked();

  /// Re-interns and applies recovered journal records to the base.
  /// Create-time only (no locks held, no engines yet).
  Status ApplyRecoveredRecords(const std::vector<JournalRecord>& records);

  /// Prepares every pooled engine's declared base probe signature and
  /// seals the base for the coming read phase. Exclusive access assumed.
  void PrepareAndSeal();

  Engine* CheckOut();
  void CheckIn(Engine* engine);

  ServerOptions options_;
  std::shared_ptr<SymbolTable> symbols_;
  RuleBase rules_;
  Database base_;

  /// Queries shared, epoch turns exclusive (see class comment).
  mutable std::shared_mutex epoch_mu_;
  /// Parsing exclusive, evaluation/rendering shared.
  mutable std::shared_mutex symbols_mu_;

  /// The pool's shared cross-query cache (null when
  /// ServerOptions::cross_query_cache is false). Declared before the
  /// engines so it outlives them: members destroy in reverse order.
  std::unique_ptr<MemoBoard> board_;

  std::vector<std::unique_ptr<Engine>> engines_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::vector<Engine*> free_;

  int64_t epoch_ = 0;           // Guarded by epoch_mu_.
  int64_t mutation_batches_ = 0;  // Guarded by epoch_mu_.
  int64_t noop_batches_ = 0;      // Guarded by epoch_mu_.
  EngineStats repair_stats_;      // Guarded by epoch_mu_.

  /// Durability state, all guarded by epoch_mu_ (mutations and
  /// checkpoints run under the exclusive lock). `journal_` is non-null
  /// iff durability is on; it is only ever replaced by a successfully
  /// created successor, so the invariant holds across rotation failures.
  std::string program_;  // Text the rulebase was parsed from (checkpointed).
  std::unique_ptr<Journal> journal_;
  bool read_only_ = false;
  bool shutdown_ = false;
  int64_t last_checkpoint_epoch_ = 0;
  int64_t checkpoints_ = 0;
  int64_t recoveries_ = 0;
  int64_t torn_records_dropped_ = 0;
  /// Append/fsync totals carried over from rotated-out journals.
  int64_t journal_appends_base_ = 0;
  int64_t fsyncs_base_ = 0;
  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> cache_hits_cross_query_{0};
  std::atomic<int64_t> contexts_reused_{0};
  std::atomic<int64_t> restricted_rejections_{0};
  std::atomic<int64_t> vm_programs_compiled_{0};
  std::atomic<int64_t> vm_ops_executed_{0};
};

}  // namespace hypo

#endif  // HYPO_SERVER_QUERY_SERVER_H_
