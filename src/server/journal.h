#ifndef HYPO_SERVER_JOURNAL_H_
#define HYPO_SERVER_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/io_util.h"
#include "base/status.h"

namespace hypo {

/// Append-only write-ahead journal of netted mutation batches.
///
/// One journal file covers the epochs since the last checkpoint. Layout:
///
///   header:  "HYPOJRN1" (8 bytes)  u32 version  u64 base_epoch
///   record*: u32 payload_len  u32 crc32c(payload)  payload
///
/// Every integer is little-endian regardless of host. `base_epoch` is the
/// epoch of the checkpoint the journal extends; record k (0-based) commits
/// the turn to epoch base_epoch + k + 1, and each payload re-states that
/// epoch so replay can detect a record sequence spliced from another
/// journal. Payloads carry symbol NAMES, not dense ids — a recovered
/// process re-interns them, so its id assignment is self-consistent even
/// though aborted batches and queries in the original process may have
/// interned constants the journal never mentions.
///
/// Failure taxonomy on read-back (ReplayJournal):
///  - fewer bytes than one complete record at EOF  -> torn write from a
///    crash mid-append: truncate, drop ONLY that final record;
///  - a complete record whose CRC mismatches, or whose epoch breaks the
///    sequence, anywhere      -> DataLoss naming the record index;
///  - bad header magic/version -> DataLoss.
///
/// Write-path failures never throw: Append returns the typed Status and
/// rolls the file back (ftruncate to the pre-append length) so an
/// unacknowledged record can never survive into replay. The server layers
/// bounded retry and read-only degradation on top (query_server.cc).
class Journal {
 public:
  /// When the OS is told to flush appended records to stable storage.
  /// `kAlways` fsyncs every append; `kGroup` fsyncs once per
  /// `group_size` appends (group commit: the unsynced tail is bounded);
  /// `kOff` never fsyncs from the append path (flushes still happen at
  /// checkpoint/shutdown). With kGroup/kOff a crash may lose acked but
  /// unsynced records — recovery still yields a consistent prefix.
  enum class FsyncPolicy { kAlways, kGroup, kOff };

  static const char* PolicyName(FsyncPolicy p);
  /// Parses "always" | "group" | "off"; InvalidArgument otherwise.
  static StatusOr<FsyncPolicy> ParsePolicy(std::string_view name);

  /// Creates (truncating any previous file) `path` with a header stamped
  /// `base_epoch`, fsyncs the header, and returns an open journal ready
  /// for Append.
  static StatusOr<std::unique_ptr<Journal>> Create(const std::string& path,
                                                   uint64_t base_epoch,
                                                   FsyncPolicy policy,
                                                   int group_size);

  /// Re-opens an existing journal for appending after recovery validated
  /// it. `valid_bytes` is the byte length of the valid prefix replay
  /// found (header + whole records); anything after it (a torn tail) is
  /// truncated away here. `next_epoch` is the epoch the next appended
  /// record will commit.
  static StatusOr<std::unique_ptr<Journal>> OpenAt(const std::string& path,
                                                   uint64_t base_epoch,
                                                   int64_t valid_bytes,
                                                   uint64_t next_epoch,
                                                   FsyncPolicy policy,
                                                   int group_size);

  /// Appends one record committing `epoch` (must equal next_epoch()).
  /// On a write or fsync failure the partial record is truncated away,
  /// leaving the file consistent for a retry; if even that rollback
  /// fails the journal poisons itself and every later Append returns
  /// Unavailable immediately. The payload bytes are framed and
  /// checksummed here; build them with EncodeJournalPayload.
  Status Append(uint64_t epoch, std::string_view payload);

  /// Forces everything appended so far to stable storage regardless of
  /// policy (checkpoint barrier, graceful shutdown).
  Status Flush();

  uint64_t next_epoch() const { return next_epoch_; }
  const std::string& path() const { return path_; }
  bool poisoned() const { return poisoned_; }

  int64_t appends() const { return appends_; }
  int64_t fsyncs() const { return fsyncs_; }

 private:
  Journal(UniqueFd fd, std::string path, int64_t size, uint64_t next_epoch,
          FsyncPolicy policy, int group_size)
      : fd_(std::move(fd)),
        path_(std::move(path)),
        size_(size),
        next_epoch_(next_epoch),
        policy_(policy),
        group_size_(group_size < 1 ? 1 : group_size) {}

  /// Writes the framed record bytes once (failpointed); no rollback here.
  Status AppendFrameOnce(const std::string& frame);
  Status MaybeFsync();

  UniqueFd fd_;
  std::string path_;
  int64_t size_;          // Bytes durably framed so far (rollback target).
  uint64_t next_epoch_;
  FsyncPolicy policy_;
  int group_size_;
  int unsynced_ = 0;      // Appends since the last fsync (kGroup).
  bool poisoned_ = false;
  int64_t appends_ = 0;
  int64_t fsyncs_ = 0;
};

/// One replayed journal record, decoded back to symbol names.
struct JournalRecord {
  uint64_t epoch = 0;
  /// Facts as (predicate name, constant names) — the decode of
  /// EncodePayload's framing.
  std::vector<std::pair<std::string, std::vector<std::string>>> inserts;
  std::vector<std::pair<std::string, std::vector<std::string>>> retracts;
};

/// Builds the payload bytes for one netted batch. Fact encoding: u32
/// insert count, u32 retract count, then each fact as length-prefixed
/// predicate name, u32 arity, length-prefixed constant names.
std::string EncodeJournalPayload(
    uint64_t epoch,
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        inserts,
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        retracts);

/// Everything ReplayJournal learned from one journal file.
struct JournalReplay {
  std::vector<JournalRecord> records;
  /// Length of the valid prefix (header + complete records). Pass to
  /// Journal::OpenAt to resume appending after the last good record.
  int64_t valid_bytes = 0;
  /// 1 when a torn final record was detected (and excluded), else 0.
  int64_t torn_records_dropped = 0;
};

/// Reads and validates `path`, which must have been created with
/// `base_epoch`. Torn tails are reported (not errors); CRC or sequence
/// damage earlier in the file is DataLoss naming the record index.
StatusOr<JournalReplay> ReplayJournal(const std::string& path,
                                      uint64_t base_epoch);

}  // namespace hypo

#endif  // HYPO_SERVER_JOURNAL_H_
