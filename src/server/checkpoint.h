#ifndef HYPO_SERVER_CHECKPOINT_H_
#define HYPO_SERVER_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ast/symbol_table.h"
#include "base/status.h"
#include "db/database.h"
#include "server/journal.h"

namespace hypo {

/// Durable snapshots of the server's committed state, and the recovery
/// scan that stitches the latest snapshot together with its journal tail.
///
/// A checkpoint file `checkpoint-<epoch>.ckpt` (epoch zero-padded so
/// lexical order is numeric order) holds one CRC-framed payload:
///
///   "HYPOCKP1"  u32 version  u32 payload_len  u32 crc32c(payload)
///   payload = u64 epoch
///             length-prefixed program text (rules + directives re-parse)
///             symbol table dump (names + arities, in id order)
///             length-prefixed Database::SerializeRelations bytes
///
/// Publication is atomic: write to `<name>.tmp`, fsync the file, rename
/// into place, fsync the directory. A crash at any point leaves either
/// the old state (tmp files are garbage, removed by GC) or the complete
/// new one — never a half-visible checkpoint. The symbol dump restores
/// the exact dense-id assignment, so the relation snapshot's raw ids —
/// and every downstream iteration order — are bit-identical after reload.

/// Path helpers, shared with the tests and the smoke script.
std::string CheckpointPath(const std::string& dir, uint64_t epoch);
std::string JournalPath(const std::string& dir, uint64_t epoch);

/// Serializes and atomically publishes a checkpoint of `base` at `epoch`.
/// On success `*out_path` names the published file.
Status WriteCheckpoint(const std::string& dir, uint64_t epoch,
                       std::string_view program, const SymbolTable& symbols,
                       const Database& base, std::string* out_path);

/// What RecoverDataDir reassembled from disk. When `have_checkpoint` is
/// false the directory held no committed state (fresh start): `symbols`
/// and `base` are null and the caller seeds epoch 1 from its own program.
struct RecoveredState {
  bool have_checkpoint = false;
  uint64_t checkpoint_epoch = 0;
  /// checkpoint_epoch + records.size(): the epoch the server resumes at.
  uint64_t epoch = 0;
  std::string program;
  std::shared_ptr<SymbolTable> symbols;
  std::unique_ptr<Database> base;
  /// Journal records after the checkpoint, already validated, in commit
  /// order. The caller re-interns the names and applies them.
  std::vector<JournalRecord> records;
  int64_t torn_records_dropped = 0;
  /// Valid journal prefix length for Journal::OpenAt, or 0 when the
  /// journal must be recreated (missing or torn before the first record —
  /// a crash between checkpoint rename and journal rotation).
  int64_t journal_valid_bytes = 0;
  bool journal_reusable = false;
};

/// Scans `dir` for the highest-epoch checkpoint, validates it, loads it,
/// and replays its journal tail. DataLoss when the newest checkpoint or
/// any non-final journal record is damaged; a torn final journal record
/// is dropped (and counted), not an error. `backend` picks the storage
/// backend for the rebuilt base database.
StatusOr<RecoveredState> RecoverDataDir(const std::string& dir,
                                        StorageBackend backend);

/// Removes superseded durable files: checkpoints below `keep_epoch`,
/// journals other than `keep_epoch`'s, and stray `.tmp` files. Best
/// effort — a failure here never loses committed state, so errors are
/// swallowed after the first (reported) one.
Status GarbageCollectDataDir(const std::string& dir, uint64_t keep_epoch);

}  // namespace hypo

#endif  // HYPO_SERVER_CHECKPOINT_H_
