#include "server/journal.h"

#include <unistd.h>

#include <cstring>
#include <utility>

#include "base/checksum.h"
#include "base/failpoint.h"

namespace hypo {

namespace {

constexpr char kMagic[8] = {'H', 'Y', 'P', 'O', 'J', 'R', 'N', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = sizeof(kMagic) + 4 + 8;
// Per record: u32 payload length + u32 crc32c.
constexpr size_t kFrameBytes = 8;

std::string HeaderBytes(uint64_t base_epoch) {
  std::string header(kMagic, sizeof(kMagic));
  AppendU32(&header, kVersion);
  AppendU64(&header, base_epoch);
  return header;
}

using NamedFacts =
    std::vector<std::pair<std::string, std::vector<std::string>>>;

Status DecodeFacts(ByteReader* r, uint32_t count, NamedFacts* out) {
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    auto pred = r->ReadLengthPrefixed();
    if (!pred.ok()) return pred.status();
    auto arity = r->ReadU32();
    if (!arity.ok()) return arity.status();
    std::vector<std::string> args;
    args.reserve(*arity);
    for (uint32_t a = 0; a < *arity; ++a) {
      auto name = r->ReadLengthPrefixed();
      if (!name.ok()) return name.status();
      args.emplace_back(*name);
    }
    out->emplace_back(std::string(*pred), std::move(args));
  }
  return Status::OK();
}

StatusOr<JournalRecord> DecodePayload(std::string_view payload) {
  ByteReader r(payload);
  JournalRecord rec;
  auto epoch = r.ReadU64();
  if (!epoch.ok()) return epoch.status();
  rec.epoch = *epoch;
  auto ni = r.ReadU32();
  if (!ni.ok()) return ni.status();
  auto nr = r.ReadU32();
  if (!nr.ok()) return nr.status();
  Status s = DecodeFacts(&r, *ni, &rec.inserts);
  if (!s.ok()) return s;
  s = DecodeFacts(&r, *nr, &rec.retracts);
  if (!s.ok()) return s;
  if (r.remaining() != 0) {
    return Status::OutOfRange("journal payload has trailing bytes");
  }
  return rec;
}

void EncodeFacts(const NamedFacts& facts, std::string* out) {
  for (const auto& [pred, args] : facts) {
    AppendLengthPrefixed(out, pred);
    AppendU32(out, static_cast<uint32_t>(args.size()));
    for (const std::string& a : args) AppendLengthPrefixed(out, a);
  }
}

uint32_t DecodeU32At(const std::string& bytes, size_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[off + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

const char* Journal::PolicyName(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kGroup:
      return "group";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "unknown";
}

StatusOr<Journal::FsyncPolicy> Journal::ParsePolicy(std::string_view name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "group") return FsyncPolicy::kGroup;
  if (name == "off") return FsyncPolicy::kOff;
  return Status::InvalidArgument("unknown fsync policy '" +
                                 std::string(name) +
                                 "' (want always|group|off)");
}

StatusOr<std::unique_ptr<Journal>> Journal::Create(const std::string& path,
                                                   uint64_t base_epoch,
                                                   FsyncPolicy policy,
                                                   int group_size) {
  HYPO_FAILPOINT("journal.create");
  auto fd = OpenForWrite(path, /*truncate=*/true);
  if (!fd.ok()) return fd.status();
  const std::string header = HeaderBytes(base_epoch);
  Status s = WriteFully(fd->get(), header, path);
  if (s.ok()) s = FsyncFd(fd->get(), path);
  if (!s.ok()) return s;
  return std::unique_ptr<Journal>(
      new Journal(std::move(*fd), path, static_cast<int64_t>(header.size()),
                  base_epoch + 1, policy, group_size));
}

StatusOr<std::unique_ptr<Journal>> Journal::OpenAt(const std::string& path,
                                                   uint64_t base_epoch,
                                                   int64_t valid_bytes,
                                                   uint64_t next_epoch,
                                                   FsyncPolicy policy,
                                                   int group_size) {
  (void)base_epoch;
  auto fd = OpenForWrite(path, /*truncate=*/false);
  if (!fd.ok()) return fd.status();
  // Drop any torn tail replay excluded, durably, then position appends
  // after the last good record.
  Status s = TruncateFd(fd->get(), valid_bytes, path);
  if (s.ok()) s = FsyncFd(fd->get(), path);
  if (!s.ok()) return s;
  if (::lseek(fd->get(), static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
    return Status::FailedPrecondition("lseek " + path + " failed");
  }
  return std::unique_ptr<Journal>(new Journal(std::move(*fd), path,
                                              valid_bytes, next_epoch,
                                              policy, group_size));
}

Status Journal::Append(uint64_t epoch, std::string_view payload) {
  if (poisoned_) {
    return Status::Unavailable("journal " + path_ +
                               " poisoned by an earlier write failure");
  }
  if (epoch != next_epoch_) {
    return Status::Internal("journal append epoch " + std::to_string(epoch) +
                            " != expected " + std::to_string(next_epoch_));
  }
  std::string frame;
  frame.reserve(kFrameBytes + payload.size());
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  AppendU32(&frame, Crc32c(payload.data(), payload.size()));
  frame.append(payload);

  Status s = AppendFrameOnce(frame);
  if (s.ok()) s = MaybeFsync();
  if (!s.ok()) {
    // Roll the file back to the pre-append length so a record the caller
    // never got acknowledged can never be replayed. A clean rollback
    // leaves the journal consistent for the server's bounded retry; if
    // even the rollback fails the tail may hold partial garbage, so the
    // journal poisons itself — appending after garbage would corrupt
    // every later record.
    Status rollback = TruncateFd(fd_.get(), size_, path_);
    if (rollback.ok()) {
      (void)::lseek(fd_.get(), static_cast<off_t>(size_), SEEK_SET);
    } else {
      poisoned_ = true;
    }
    return s;
  }
  size_ += static_cast<int64_t>(frame.size());
  ++next_epoch_;
  ++appends_;
  return Status::OK();
}

Status Journal::AppendFrameOnce(const std::string& frame) {
  HYPO_FAILPOINT("journal.append");
  Status s = WriteFully(fd_.get(), frame, path_);
  if (!s.ok()) return s;
  // Fires with the record fully written but not yet acknowledged — the
  // rollback in Append must truncate it away or recovery would replay a
  // mutation the client was told failed.
  HYPO_FAILPOINT("journal.append.unacked");
  return Status::OK();
}

Status Journal::MaybeFsync() {
  switch (policy_) {
    case FsyncPolicy::kOff:
      return Status::OK();
    case FsyncPolicy::kGroup:
      // Count the append only once it is known to stick (a failed append
      // is rolled back and retried — it must not consume group budget).
      if (unsynced_ + 1 < group_size_) {
        ++unsynced_;
        return Status::OK();
      }
      break;
    case FsyncPolicy::kAlways:
      break;
  }
  HYPO_FAILPOINT("journal.fsync");
  Status s = FsyncFd(fd_.get(), path_);
  if (!s.ok()) return s;
  unsynced_ = 0;
  ++fsyncs_;
  return Status::OK();
}

Status Journal::Flush() {
  if (poisoned_) {
    return Status::Unavailable("journal " + path_ +
                               " poisoned by an earlier write failure");
  }
  HYPO_FAILPOINT("journal.fsync");
  Status s = FsyncFd(fd_.get(), path_);
  if (!s.ok()) {
    poisoned_ = true;
    return s;
  }
  unsynced_ = 0;
  ++fsyncs_;
  return Status::OK();
}

std::string EncodeJournalPayload(uint64_t epoch, const NamedFacts& inserts,
                                 const NamedFacts& retracts) {
  std::string payload;
  AppendU64(&payload, epoch);
  AppendU32(&payload, static_cast<uint32_t>(inserts.size()));
  AppendU32(&payload, static_cast<uint32_t>(retracts.size()));
  EncodeFacts(inserts, &payload);
  EncodeFacts(retracts, &payload);
  return payload;
}

StatusOr<JournalReplay> ReplayJournal(const std::string& path,
                                      uint64_t base_epoch) {
  auto bytes_or = ReadFileToString(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::string& bytes = *bytes_or;

  JournalReplay out;
  if (bytes.size() < kHeaderBytes) {
    // A header is written and fsynced in one shot at journal creation, so
    // a short file can only be a crash mid-rotation: treat it as torn.
    // valid_bytes == 0 tells the caller to recreate the journal.
    out.torn_records_dropped = bytes.empty() ? 0 : 1;
    return out;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("journal " + path + " has bad magic");
  }
  ByteReader header(
      std::string_view(bytes).substr(sizeof(kMagic), kHeaderBytes));
  const uint32_t version = *header.ReadU32();
  if (version != kVersion) {
    return Status::DataLoss("journal " + path + " has unsupported version " +
                            std::to_string(version));
  }
  const uint64_t stamped = *header.ReadU64();
  if (stamped != base_epoch) {
    return Status::DataLoss(
        "journal " + path + " stamped for base epoch " +
        std::to_string(stamped) + ", checkpoint is at epoch " +
        std::to_string(base_epoch));
  }

  out.valid_bytes = static_cast<int64_t>(kHeaderBytes);
  size_t off = kHeaderBytes;
  uint64_t expect = base_epoch + 1;
  size_t index = 0;
  while (off < bytes.size()) {
    const size_t rem = bytes.size() - off;
    if (rem < kFrameBytes) {
      out.torn_records_dropped = 1;  // Crash mid-frame: drop the tail.
      break;
    }
    const uint32_t len = DecodeU32At(bytes, off);
    const uint32_t crc = DecodeU32At(bytes, off + 4);
    if (rem - kFrameBytes < len) {
      out.torn_records_dropped = 1;  // Crash mid-payload.
      break;
    }
    const std::string_view payload(bytes.data() + off + kFrameBytes, len);
    if (Crc32c(payload.data(), payload.size()) != crc) {
      return Status::DataLoss("journal " + path + " record " +
                              std::to_string(index) + " checksum mismatch");
    }
    auto rec = DecodePayload(payload);
    if (!rec.ok()) {
      return Status::DataLoss("journal " + path + " record " +
                              std::to_string(index) +
                              " undecodable: " + rec.status().message());
    }
    if (rec->epoch != expect) {
      return Status::DataLoss(
          "journal " + path + " record " + std::to_string(index) +
          " commits epoch " + std::to_string(rec->epoch) + ", expected " +
          std::to_string(expect));
    }
    out.records.push_back(std::move(*rec));
    off += kFrameBytes + len;
    out.valid_bytes = static_cast<int64_t>(off);
    ++expect;
    ++index;
  }
  return out;
}

}  // namespace hypo
