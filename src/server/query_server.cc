#include "server/query_server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <utility>

#include "analysis/restricted.h"
#include "engine/bottom_up.h"
#include "engine/memo_board.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "parser/parser.h"
#include "server/checkpoint.h"

namespace hypo {

namespace {

std::unique_ptr<Engine> MakeEngine(const std::string& name,
                                   const RuleBase* rules, const Database* db,
                                   const EngineOptions& options) {
  if (name == "tabled") {
    return std::make_unique<TabledEngine>(rules, db, options);
  }
  if (name == "stratified") {
    return std::make_unique<StratifiedProver>(rules, db, options);
  }
  if (name == "bottomup") {
    return std::make_unique<BottomUpEngine>(rules, db, options);
  }
  return nullptr;
}

/// Returns the checked-out engine even when evaluation fails or throws.
class EngineLease {
 public:
  EngineLease(QueryServer* server, Engine* engine,
              void (QueryServer::*release)(Engine*))
      : server_(server), engine_(engine), release_(release) {}
  ~EngineLease() { (server_->*release_)(engine_); }
  Engine* get() const { return engine_; }

 private:
  QueryServer* server_;
  Engine* engine_;
  void (QueryServer::*release_)(Engine*);
};

/// Deterministic fact order for journaled deltas: the on-disk record (and
/// therefore the recovered insertion order) must not depend on hash-map
/// iteration.
bool FactLess(const Fact& a, const Fact& b) {
  if (a.predicate != b.predicate) return a.predicate < b.predicate;
  return a.args < b.args;
}

}  // namespace

StatusOr<std::unique_ptr<QueryServer>> QueryServer::Create(
    std::string_view program, ServerOptions options) {
  if (options.pool_size < 1) {
    return Status::InvalidArgument("server pool_size must be >= 1");
  }
  if (options.engine_options.demand) {
    return Status::InvalidArgument(
        "the server requires demand=false: demand-driven evaluation "
        "rewrites the rulebase per query, which defeats shared-model "
        "incremental maintenance");
  }

  const DurabilityOptions& dur = options.durability;
  std::unique_ptr<QueryServer> server;
  bool fresh_data_dir = false;
  if (!dur.data_dir.empty()) {
    auto recovered =
        RecoverDataDir(dur.data_dir, Database::DefaultBackend());
    if (!recovered.ok()) return recovered.status();
    if (recovered->have_checkpoint) {
      // The persisted program is authoritative: the checkpointed
      // relations were built against ITS rulebase, and re-parsing it
      // against the checkpoint's symbol table re-interns every symbol to
      // the same dense id (interning is idempotent and the dump is in id
      // order).
      auto symbols = recovered->symbols;
      auto parsed = ParseProgram(recovered->program, symbols);
      if (!parsed.ok()) {
        return Status::DataLoss(
            "checkpointed program no longer parses: " +
            parsed.status().message());
      }
      server.reset(new QueryServer(std::move(options), std::move(symbols),
                                   std::move(parsed->rules),
                                   std::move(*recovered->base)));
      server->program_ = std::move(recovered->program);
      if (Status s = server->ApplyRecoveredRecords(recovered->records);
          !s.ok()) {
        return s;
      }
      server->epoch_ = static_cast<int64_t>(recovered->epoch);
      server->last_checkpoint_epoch_ =
          static_cast<int64_t>(recovered->checkpoint_epoch);
      server->recoveries_ = 1;
      server->torn_records_dropped_ = recovered->torn_records_dropped;
      const std::string jpath =
          JournalPath(dur.data_dir, recovered->checkpoint_epoch);
      StatusOr<std::unique_ptr<Journal>> journal =
          recovered->journal_reusable
              ? Journal::OpenAt(jpath, recovered->checkpoint_epoch,
                                recovered->journal_valid_bytes,
                                recovered->epoch + 1, dur.fsync_policy,
                                dur.fsync_group_size)
              : Journal::Create(jpath, recovered->checkpoint_epoch,
                                dur.fsync_policy, dur.fsync_group_size);
      if (!journal.ok()) return journal.status();
      server->journal_ = std::move(*journal);
      // Journal replay can re-validate only what the journal carries;
      // anything it dropped (a torn tail) is already counted. The epoch
      // the journal will stamp next must line up with where we resumed.
      if (server->journal_->next_epoch() !=
          static_cast<uint64_t>(server->epoch_) + 1) {
        return Status::Internal("recovered journal epoch misaligned");
      }
    } else {
      fresh_data_dir = true;
    }
  }

  if (server == nullptr) {
    auto symbols = std::make_shared<SymbolTable>();
    auto parsed = ParseProgram(program, symbols);
    if (!parsed.ok()) return parsed.status();
    server.reset(new QueryServer(std::move(options), std::move(symbols),
                                 std::move(parsed->rules),
                                 std::move(parsed->facts)));
    server->program_ = std::string(program);
    server->epoch_ = 1;
  }

  if (Status s = server->InitEngines(); !s.ok()) return s;
  if (server->options_.cross_query_cache) {
    server->board_ =
        std::make_unique<MemoBoard>(server->options_.cache_bytes);
    server->board_->BeginEpoch(server->epoch_);
    for (const auto& engine : server->engines_) {
      engine->AttachMemoBoard(server->board_.get());
    }
  }
  server->PrepareAndSeal();

  if (fresh_data_dir) {
    // Seed the dir with an epoch-1 checkpoint before serving: recovery
    // then ALWAYS finds a checkpoint, so a journal with no checkpoint is
    // unambiguously damage, never a normal state.
    const DurabilityOptions& d = server->options_.durability;
    Status s = WriteCheckpoint(d.data_dir, 1, server->program_,
                               *server->symbols_, server->base_, nullptr);
    if (!s.ok()) return s;
    auto journal = Journal::Create(JournalPath(d.data_dir, 1), 1,
                                   d.fsync_policy, d.fsync_group_size);
    if (!journal.ok()) return journal.status();
    server->journal_ = std::move(*journal);
    server->last_checkpoint_epoch_ = 1;
    server->checkpoints_ = 1;
    (void)GarbageCollectDataDir(d.data_dir, 1);
  }
  return server;
}

QueryServer::QueryServer(ServerOptions options,
                         std::shared_ptr<SymbolTable> symbols, RuleBase rules,
                         Database base)
    : options_(std::move(options)),
      symbols_(std::move(symbols)),
      rules_(std::move(rules)),
      base_(std::move(base)) {}

QueryServer::~QueryServer() {
  // Quiesce: no query may still hold a lease while engines are destroyed.
  std::unique_lock<std::shared_mutex> lock(epoch_mu_);
}

Status QueryServer::InitEngines() {
  engines_.reserve(options_.pool_size);
  free_.reserve(options_.pool_size);
  for (int i = 0; i < options_.pool_size; ++i) {
    auto engine = MakeEngine(options_.engine_name, &rules_, &base_,
                             options_.engine_options);
    if (engine == nullptr) {
      return Status::InvalidArgument("unknown engine \"" +
                                     options_.engine_name +
                                     "\" (tabled|stratified|bottomup)");
    }
    if (Status s = engine->Init(); !s.ok()) return s;
    free_.push_back(engine.get());
    engines_.push_back(std::move(engine));
  }
  return Status::OK();
}

void QueryServer::PrepareAndSeal() {
  // The server's base lives across many epochs and every engine probes
  // it; sorted permutation indexes pay their O(n log n) once per epoch
  // and are O(1) to reseal when the relations did not change.
  base_.EnableSortedIndexes();
  for (const auto& engine : engines_) {
    for (const auto& [pred, mask] : engine->BaseProbeSignatures()) {
      base_.PrepareIndex(pred, mask);
    }
  }
  base_.SealIndexes();
}

Engine* QueryServer::CheckOut() {
  std::unique_lock<std::mutex> lock(pool_mu_);
  pool_cv_.wait(lock, [&] { return !free_.empty(); });
  Engine* engine = free_.back();
  free_.pop_back();
  return engine;
}

void QueryServer::CheckIn(Engine* engine) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    free_.push_back(engine);
  }
  pool_cv_.notify_one();
}

StatusOr<QueryOutcome> QueryServer::Query(std::string_view text,
                                          const QuerySpec& spec) {
  hypo::Query query;
  {
    std::unique_lock<std::shared_mutex> symbols_lock(symbols_mu_);
    auto parsed = ParseQuery(text, symbols_.get());
    if (!parsed.ok()) return parsed.status();
    query = std::move(*parsed);
  }
  // Restricted predicates are rejected up front — before an engine lease,
  // so a stream of violating queries cannot occupy the pool.
  if (Status s = CheckQueryRestrictions(rules_, query); !s.ok()) {
    restricted_rejections_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }

  // Held shared for the whole evaluation: an epoch turn waits for us.
  std::shared_lock<std::shared_mutex> epoch_lock(epoch_mu_);
  EngineLease lease(this, CheckOut(), &QueryServer::CheckIn);
  Engine* engine = lease.get();

  EngineOptions* opts = engine->mutable_options();
  opts->timeout_micros = spec.timeout_micros >= 0
                             ? spec.timeout_micros
                             : options_.engine_options.timeout_micros;
  opts->max_memory_bytes = spec.max_memory_bytes >= 0
                               ? spec.max_memory_bytes
                               : options_.engine_options.max_memory_bytes;
  engine->ResetStats();

  QueryOutcome out;
  out.epoch = epoch_;

  std::shared_lock<std::shared_mutex> symbols_lock(symbols_mu_);
  if (query.num_vars() == 0) {
    auto proven = engine->ProveQuery(query);
    if (!proven.ok()) return proven.status();
    out.boolean = true;
    out.proven = *proven;
  } else {
    auto answers = engine->Answers(query);
    if (!answers.ok()) return answers.status();
    out.var_names = query.var_names;
    out.answers.reserve(answers->size());
    for (const Tuple& tuple : *answers) {
      std::vector<std::string> row;
      row.reserve(tuple.size());
      for (ConstId c : tuple) row.push_back(symbols_->ConstName(c));
      out.answers.push_back(std::move(row));
    }
  }
  out.stats = engine->stats();
  queries_.fetch_add(1, std::memory_order_relaxed);
  cache_hits_cross_query_.fetch_add(out.stats.cache_hits_cross_query,
                                    std::memory_order_relaxed);
  contexts_reused_.fetch_add(out.stats.contexts_reused,
                             std::memory_order_relaxed);
  vm_programs_compiled_.fetch_add(out.stats.vm_programs_compiled,
                                  std::memory_order_relaxed);
  vm_ops_executed_.fetch_add(out.stats.vm_ops_executed,
                             std::memory_order_relaxed);
  return out;
}

std::string QueryServer::Explain() {
  std::shared_lock<std::shared_mutex> epoch_lock(epoch_mu_);
  EngineLease lease(this, CheckOut(), &QueryServer::CheckIn);
  // Symbol names are read while disassembling predicate references.
  std::shared_lock<std::shared_mutex> symbols_lock(symbols_mu_);
  return lease.get()->ExplainPlans();
}

StatusOr<QueryServer::Mutation> QueryServer::ParseMutation(
    std::string_view fact_text, bool insert) {
  std::unique_lock<std::shared_mutex> symbols_lock(symbols_mu_);
  auto fact = ParseFact(fact_text, symbols_.get());
  if (!fact.ok()) return fact.status();
  Mutation m;
  m.insert = insert;
  m.fact = std::move(*fact);
  return m;
}

StatusOr<MutationOutcome> QueryServer::Insert(std::string_view fact_text) {
  auto m = ParseMutation(fact_text, /*insert=*/true);
  if (!m.ok()) return m.status();
  return ApplyBatch({std::move(*m)});
}

StatusOr<MutationOutcome> QueryServer::Retract(std::string_view fact_text) {
  auto m = ParseMutation(fact_text, /*insert=*/false);
  if (!m.ok()) return m.status();
  return ApplyBatch({std::move(*m)});
}

StatusOr<MutationOutcome> QueryServer::ApplyBatch(
    const std::vector<Mutation>& batch) {
  std::unique_lock<std::shared_mutex> epoch_lock(epoch_mu_);
  ++mutation_batches_;
  if (read_only_) {
    return Status::Unavailable(
        "server is read-only after a journal failure; mutations are "
        "rejected until restart (queries still serve)");
  }
  if (shutdown_) {
    return Status::Unavailable("server is shut down");
  }

  // The BaseDelta contract wants NET changes only. The net effect is
  // computed WITHOUT touching the base — write-ahead logging demands the
  // batch be durable before any in-memory state moves, and a journal
  // failure must leave the base exactly as it was. `present` simulates
  // each touched fact's membership through the batch in order
  // (insert-then-retract of the same fact nets out).
  std::unordered_map<Fact, bool, FactHash> initial;
  std::unordered_map<Fact, bool, FactHash> present;
  for (const Mutation& m : batch) {
    auto [it, first_touch] = present.try_emplace(m.fact, false);
    if (first_touch) {
      const bool was = base_.Contains(m.fact);
      initial.emplace(m.fact, was);
      it->second = was;
    }
    it->second = m.insert;
  }
  BaseDelta delta;
  for (const auto& [fact, now_present] : present) {
    if (now_present == initial[fact]) continue;
    (now_present ? delta.inserts : delta.retracts).push_back(fact);
  }
  // Hash-map iteration filled the delta in arbitrary order; sort so the
  // journal record — and the recovered process's insertion order — is a
  // pure function of the logical batch.
  std::sort(delta.inserts.begin(), delta.inserts.end(), FactLess);
  std::sort(delta.retracts.begin(), delta.retracts.end(), FactLess);

  MutationOutcome out;
  out.changed =
      static_cast<int64_t>(delta.inserts.size() + delta.retracts.size());
  if (delta.empty()) {
    // Nothing moved; keep the current epoch's seal (reseal is idempotent
    // and cheap when indexes are already caught up). No journal record:
    // a no-op batch does not turn the epoch.
    base_.SealIndexes();
    ++noop_batches_;
    out.epoch = epoch_;
    return out;
  }

  // Journal first. Only after the record is durably framed may the base
  // move; on failure the server degrades to read-only with the base,
  // engines, and seal all untouched at the last committed epoch.
  if (journal_ != nullptr) {
    if (Status s = JournalAppend(delta); !s.ok()) {
      read_only_ = true;
      return Status::Unavailable(
          "mutation batch not committed (journal append failed after "
          "retries: " +
          s.message() + "); server is now read-only");
    }
  }

  for (const Fact& f : delta.inserts) base_.Insert(f);
  for (const Fact& f : delta.retracts) base_.Retract(f);

  // New epoch: re-prepare the engines' probe signatures over the mutated
  // relations, reseal, then let each engine repair its memoized models.
  PrepareAndSeal();
  // Turn the board's epoch BEFORE any engine repairs: stale goal verdicts
  // vanish at once, and the first engine to finish repairing republishes
  // the base model under the new epoch for its siblings to adopt.
  if (board_ != nullptr) board_->BeginEpoch(epoch_ + 1);
  Status first_error = Status::OK();
  for (const auto& engine : engines_) {
    engine->ResetStats();
    Status s = engine->ApplyBaseDelta(delta);
    if (!s.ok()) {
      // All-or-nothing per engine: an engine whose repair aborted midway
      // must not serve the new epoch half-repaired. Force a from-scratch
      // Init (cheap — models rebuild lazily on the next query) so the
      // engine re-enters the pool coherent, and surface the first error.
      Status reinit = engine->Init();
      if (first_error.ok()) first_error = reinit.ok() ? s : reinit;
    }
    repair_stats_.Merge(engine->stats());
  }
  ++epoch_;
  out.epoch = epoch_;
  if (journal_ != nullptr && options_.durability.checkpoint_every > 0 &&
      epoch_ - last_checkpoint_epoch_ >=
          options_.durability.checkpoint_every) {
    // The batch is already committed (journaled and applied); periodic
    // checkpoint trouble must not fail it. A rotation failure inside
    // flips read_only_, which the next mutation reports.
    (void)CheckpointLocked();
  }
  if (!first_error.ok()) return first_error;
  return out;
}

Status QueryServer::JournalAppend(const BaseDelta& delta) {
  std::vector<std::pair<std::string, std::vector<std::string>>> inserts;
  std::vector<std::pair<std::string, std::vector<std::string>>> retracts;
  {
    std::shared_lock<std::shared_mutex> symbols_lock(symbols_mu_);
    auto render = [&](const std::vector<Fact>& facts, auto* out) {
      out->reserve(facts.size());
      for (const Fact& f : facts) {
        std::vector<std::string> args;
        args.reserve(f.args.size());
        for (ConstId c : f.args) args.push_back(symbols_->ConstName(c));
        out->emplace_back(symbols_->PredicateName(f.predicate),
                          std::move(args));
      }
    };
    render(delta.inserts, &inserts);
    render(delta.retracts, &retracts);
  }
  const auto epoch = static_cast<uint64_t>(epoch_) + 1;
  const std::string payload =
      EncodeJournalPayload(epoch, inserts, retracts);
  Status s;
  for (int attempt = 0;
       attempt <= options_.durability.append_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          options_.durability.retry_backoff_ms * attempt));
    }
    s = journal_->Append(epoch, payload);
    if (s.ok()) return s;
    // A poisoned journal cannot take the record no matter how often we
    // ask (its tail could not be rolled back); stop burning attempts.
    if (journal_->poisoned()) break;
  }
  return s;
}

Status QueryServer::CheckpointLocked() {
  if (journal_ == nullptr) {
    return Status::FailedPrecondition(
        "durability is off (no --data-dir); nothing to checkpoint");
  }
  if (read_only_) {
    return Status::Unavailable(
        "server is read-only; the journal already holds all committed "
        "state");
  }
  const DurabilityOptions& dur = options_.durability;
  Status s;
  {
    std::shared_lock<std::shared_mutex> symbols_lock(symbols_mu_);
    s = WriteCheckpoint(dur.data_dir, static_cast<uint64_t>(epoch_),
                        program_, *symbols_, base_, nullptr);
  }
  // A failed checkpoint write is NOT a degradation: the previous
  // checkpoint + current journal remain authoritative and writable.
  if (!s.ok()) return s;

  // Rotate: a fresh journal based at the new checkpoint. The old journal
  // object is only released once its successor exists, preserving the
  // "journal_ non-null while durable" invariant; if rotation fails the
  // server degrades to read-only (its committed state is all in the
  // checkpoint just written, so nothing is lost).
  auto rotated =
      Journal::Create(JournalPath(dur.data_dir, static_cast<uint64_t>(epoch_)),
                      static_cast<uint64_t>(epoch_), dur.fsync_policy,
                      dur.fsync_group_size);
  if (!rotated.ok()) {
    read_only_ = true;
    return rotated.status();
  }
  journal_appends_base_ += journal_->appends();
  fsyncs_base_ += journal_->fsyncs();
  journal_ = std::move(*rotated);
  last_checkpoint_epoch_ = epoch_;
  ++checkpoints_;
  (void)GarbageCollectDataDir(dur.data_dir, static_cast<uint64_t>(epoch_));
  return Status::OK();
}

Status QueryServer::Checkpoint() {
  std::unique_lock<std::shared_mutex> epoch_lock(epoch_mu_);
  return CheckpointLocked();
}

Status QueryServer::Shutdown() {
  // Exclusive acquisition IS the drain: every in-flight query holds the
  // lock shared and finishes first.
  std::unique_lock<std::shared_mutex> epoch_lock(epoch_mu_);
  if (shutdown_) return Status::OK();
  shutdown_ = true;
  if (journal_ == nullptr) return Status::OK();
  if (read_only_) {
    // The journal (possibly on a failing device) already holds every
    // acknowledged batch; recovery replays it. Don't touch the device
    // again.
    return Status::OK();
  }
  if (Status s = journal_->Flush(); !s.ok()) {
    read_only_ = true;
    return s;
  }
  // The final checkpoint is an optimization (instant restart, no
  // replay); the flush above already made every acked batch durable, so
  // its failure is reported but loses nothing.
  return CheckpointLocked();
}

bool QueryServer::read_only() const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  return read_only_;
}

std::string QueryServer::CanonicalState() const {
  std::shared_lock<std::shared_mutex> epoch_lock(epoch_mu_);
  std::shared_lock<std::shared_mutex> symbols_lock(symbols_mu_);
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(base_.size()));
  base_.ForEach([&](const Fact& f) {
    std::string line = symbols_->PredicateName(f.predicate);
    line += '(';
    for (size_t i = 0; i < f.args.size(); ++i) {
      if (i > 0) line += ", ";
      line += symbols_->ConstName(f.args[i]);
    }
    line += ')';
    lines.push_back(std::move(line));
  });
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

Status QueryServer::ApplyRecoveredRecords(
    const std::vector<JournalRecord>& records) {
  for (const JournalRecord& rec : records) {
    auto apply = [&](const auto& named, bool insert) -> Status {
      for (const auto& [pred, args] : named) {
        auto id = symbols_->InternPredicate(pred,
                                            static_cast<int>(args.size()));
        if (!id.ok()) {
          return Status::DataLoss(
              "journal record for epoch " + std::to_string(rec.epoch) +
              " conflicts with the checkpointed schema: " +
              id.status().message());
        }
        Fact fact;
        fact.predicate = *id;
        fact.args.reserve(args.size());
        for (const std::string& a : args) {
          fact.args.push_back(symbols_->InternConst(a));
        }
        if (insert) {
          base_.Insert(fact);
        } else {
          base_.Retract(fact);
        }
      }
      return Status::OK();
    };
    if (Status s = apply(rec.inserts, true); !s.ok()) return s;
    if (Status s = apply(rec.retracts, false); !s.ok()) return s;
  }
  return Status::OK();
}

int64_t QueryServer::epoch() const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  return epoch_;
}

QueryServer::Counters QueryServer::counters() const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  Counters c;
  c.queries = queries_.load(std::memory_order_relaxed);
  c.mutation_batches = mutation_batches_;
  c.noop_batches = noop_batches_;
  c.base_facts = base_.size();
  c.arena_bytes = base_.ArenaBytes();
  c.sorted_probes = base_.sorted_probes();
  c.index_sort_micros = base_.index_sort_micros();
  c.cache_hits_cross_query =
      cache_hits_cross_query_.load(std::memory_order_relaxed);
  c.contexts_reused = contexts_reused_.load(std::memory_order_relaxed);
  c.restricted_rejections =
      restricted_rejections_.load(std::memory_order_relaxed);
  c.journal_appends =
      journal_appends_base_ +
      (journal_ != nullptr ? journal_->appends() : 0);
  c.fsyncs = fsyncs_base_ + (journal_ != nullptr ? journal_->fsyncs() : 0);
  c.checkpoints = checkpoints_;
  c.recoveries = recoveries_;
  c.torn_records_dropped = torn_records_dropped_;
  c.read_only = read_only_;
  // Queries accumulate into the atomics; epoch-turn recompiles land in the
  // merged repair stats. Init-time compiles are counted by neither (the
  // engines' stats are reset before their first lease).
  c.vm_programs_compiled =
      vm_programs_compiled_.load(std::memory_order_relaxed) +
      repair_stats_.vm_programs_compiled;
  c.vm_ops_executed = vm_ops_executed_.load(std::memory_order_relaxed) +
                      repair_stats_.vm_ops_executed;
  c.repair = repair_stats_;
  return c;
}

}  // namespace hypo
