#include "server/query_server.h"

#include <unordered_map>
#include <utility>

#include "analysis/restricted.h"
#include "engine/bottom_up.h"
#include "engine/memo_board.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "parser/parser.h"

namespace hypo {

namespace {

std::unique_ptr<Engine> MakeEngine(const std::string& name,
                                   const RuleBase* rules, const Database* db,
                                   const EngineOptions& options) {
  if (name == "tabled") {
    return std::make_unique<TabledEngine>(rules, db, options);
  }
  if (name == "stratified") {
    return std::make_unique<StratifiedProver>(rules, db, options);
  }
  if (name == "bottomup") {
    return std::make_unique<BottomUpEngine>(rules, db, options);
  }
  return nullptr;
}

/// Returns the checked-out engine even when evaluation fails or throws.
class EngineLease {
 public:
  EngineLease(QueryServer* server, Engine* engine,
              void (QueryServer::*release)(Engine*))
      : server_(server), engine_(engine), release_(release) {}
  ~EngineLease() { (server_->*release_)(engine_); }
  Engine* get() const { return engine_; }

 private:
  QueryServer* server_;
  Engine* engine_;
  void (QueryServer::*release_)(Engine*);
};

}  // namespace

StatusOr<std::unique_ptr<QueryServer>> QueryServer::Create(
    std::string_view program, ServerOptions options) {
  if (options.pool_size < 1) {
    return Status::InvalidArgument("server pool_size must be >= 1");
  }
  if (options.engine_options.demand) {
    return Status::InvalidArgument(
        "the server requires demand=false: demand-driven evaluation "
        "rewrites the rulebase per query, which defeats shared-model "
        "incremental maintenance");
  }
  auto symbols = std::make_shared<SymbolTable>();
  auto parsed = ParseProgram(program, symbols);
  if (!parsed.ok()) return parsed.status();

  std::unique_ptr<QueryServer> server(
      new QueryServer(std::move(options), std::move(symbols),
                      std::move(parsed->rules), std::move(parsed->facts)));
  if (Status s = server->InitEngines(); !s.ok()) return s;
  if (server->options_.cross_query_cache) {
    server->board_ =
        std::make_unique<MemoBoard>(server->options_.cache_bytes);
    server->board_->BeginEpoch(1);
    for (const auto& engine : server->engines_) {
      engine->AttachMemoBoard(server->board_.get());
    }
  }
  server->PrepareAndSeal();
  server->epoch_ = 1;
  return server;
}

QueryServer::QueryServer(ServerOptions options,
                         std::shared_ptr<SymbolTable> symbols, RuleBase rules,
                         Database base)
    : options_(std::move(options)),
      symbols_(std::move(symbols)),
      rules_(std::move(rules)),
      base_(std::move(base)) {}

QueryServer::~QueryServer() {
  // Quiesce: no query may still hold a lease while engines are destroyed.
  std::unique_lock<std::shared_mutex> lock(epoch_mu_);
}

Status QueryServer::InitEngines() {
  engines_.reserve(options_.pool_size);
  free_.reserve(options_.pool_size);
  for (int i = 0; i < options_.pool_size; ++i) {
    auto engine = MakeEngine(options_.engine_name, &rules_, &base_,
                             options_.engine_options);
    if (engine == nullptr) {
      return Status::InvalidArgument("unknown engine \"" +
                                     options_.engine_name +
                                     "\" (tabled|stratified|bottomup)");
    }
    if (Status s = engine->Init(); !s.ok()) return s;
    free_.push_back(engine.get());
    engines_.push_back(std::move(engine));
  }
  return Status::OK();
}

void QueryServer::PrepareAndSeal() {
  // The server's base lives across many epochs and every engine probes
  // it; sorted permutation indexes pay their O(n log n) once per epoch
  // and are O(1) to reseal when the relations did not change.
  base_.EnableSortedIndexes();
  for (const auto& engine : engines_) {
    for (const auto& [pred, mask] : engine->BaseProbeSignatures()) {
      base_.PrepareIndex(pred, mask);
    }
  }
  base_.SealIndexes();
}

Engine* QueryServer::CheckOut() {
  std::unique_lock<std::mutex> lock(pool_mu_);
  pool_cv_.wait(lock, [&] { return !free_.empty(); });
  Engine* engine = free_.back();
  free_.pop_back();
  return engine;
}

void QueryServer::CheckIn(Engine* engine) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    free_.push_back(engine);
  }
  pool_cv_.notify_one();
}

StatusOr<QueryOutcome> QueryServer::Query(std::string_view text,
                                          const QuerySpec& spec) {
  hypo::Query query;
  {
    std::unique_lock<std::shared_mutex> symbols_lock(symbols_mu_);
    auto parsed = ParseQuery(text, symbols_.get());
    if (!parsed.ok()) return parsed.status();
    query = std::move(*parsed);
  }
  // Restricted predicates are rejected up front — before an engine lease,
  // so a stream of violating queries cannot occupy the pool.
  if (Status s = CheckQueryRestrictions(rules_, query); !s.ok()) {
    restricted_rejections_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }

  // Held shared for the whole evaluation: an epoch turn waits for us.
  std::shared_lock<std::shared_mutex> epoch_lock(epoch_mu_);
  EngineLease lease(this, CheckOut(), &QueryServer::CheckIn);
  Engine* engine = lease.get();

  EngineOptions* opts = engine->mutable_options();
  opts->timeout_micros = spec.timeout_micros >= 0
                             ? spec.timeout_micros
                             : options_.engine_options.timeout_micros;
  opts->max_memory_bytes = spec.max_memory_bytes >= 0
                               ? spec.max_memory_bytes
                               : options_.engine_options.max_memory_bytes;
  engine->ResetStats();

  QueryOutcome out;
  out.epoch = epoch_;

  std::shared_lock<std::shared_mutex> symbols_lock(symbols_mu_);
  if (query.num_vars() == 0) {
    auto proven = engine->ProveQuery(query);
    if (!proven.ok()) return proven.status();
    out.boolean = true;
    out.proven = *proven;
  } else {
    auto answers = engine->Answers(query);
    if (!answers.ok()) return answers.status();
    out.var_names = query.var_names;
    out.answers.reserve(answers->size());
    for (const Tuple& tuple : *answers) {
      std::vector<std::string> row;
      row.reserve(tuple.size());
      for (ConstId c : tuple) row.push_back(symbols_->ConstName(c));
      out.answers.push_back(std::move(row));
    }
  }
  out.stats = engine->stats();
  queries_.fetch_add(1, std::memory_order_relaxed);
  cache_hits_cross_query_.fetch_add(out.stats.cache_hits_cross_query,
                                    std::memory_order_relaxed);
  contexts_reused_.fetch_add(out.stats.contexts_reused,
                             std::memory_order_relaxed);
  vm_programs_compiled_.fetch_add(out.stats.vm_programs_compiled,
                                  std::memory_order_relaxed);
  vm_ops_executed_.fetch_add(out.stats.vm_ops_executed,
                             std::memory_order_relaxed);
  return out;
}

std::string QueryServer::Explain() {
  std::shared_lock<std::shared_mutex> epoch_lock(epoch_mu_);
  EngineLease lease(this, CheckOut(), &QueryServer::CheckIn);
  // Symbol names are read while disassembling predicate references.
  std::shared_lock<std::shared_mutex> symbols_lock(symbols_mu_);
  return lease.get()->ExplainPlans();
}

StatusOr<QueryServer::Mutation> QueryServer::ParseMutation(
    std::string_view fact_text, bool insert) {
  std::unique_lock<std::shared_mutex> symbols_lock(symbols_mu_);
  auto fact = ParseFact(fact_text, symbols_.get());
  if (!fact.ok()) return fact.status();
  Mutation m;
  m.insert = insert;
  m.fact = std::move(*fact);
  return m;
}

StatusOr<MutationOutcome> QueryServer::Insert(std::string_view fact_text) {
  auto m = ParseMutation(fact_text, /*insert=*/true);
  if (!m.ok()) return m.status();
  return ApplyBatch({std::move(*m)});
}

StatusOr<MutationOutcome> QueryServer::Retract(std::string_view fact_text) {
  auto m = ParseMutation(fact_text, /*insert=*/false);
  if (!m.ok()) return m.status();
  return ApplyBatch({std::move(*m)});
}

StatusOr<MutationOutcome> QueryServer::ApplyBatch(
    const std::vector<Mutation>& batch) {
  std::unique_lock<std::shared_mutex> epoch_lock(epoch_mu_);
  ++mutation_batches_;

  // The BaseDelta contract wants NET changes only: record each touched
  // fact's pre-batch presence, apply the batch in order, then diff final
  // against initial (insert-then-retract of the same fact nets out).
  std::unordered_map<Fact, bool, FactHash> initial;
  for (const Mutation& m : batch) {
    initial.emplace(m.fact, base_.Contains(m.fact));
    if (m.insert) {
      base_.Insert(m.fact);
    } else {
      base_.Retract(m.fact);
    }
  }
  BaseDelta delta;
  for (const auto& [fact, was_present] : initial) {
    bool now_present = base_.Contains(fact);
    if (now_present == was_present) continue;
    (now_present ? delta.inserts : delta.retracts).push_back(fact);
  }

  MutationOutcome out;
  out.changed =
      static_cast<int64_t>(delta.inserts.size() + delta.retracts.size());
  if (delta.empty()) {
    // Nothing moved; keep the current epoch's seal (mutating members may
    // have unsealed transiently on not-actually-changing paths — reseal
    // is idempotent and cheap when indexes are already caught up).
    base_.SealIndexes();
    ++noop_batches_;
    out.epoch = epoch_;
    return out;
  }

  // New epoch: re-prepare the engines' probe signatures over the mutated
  // relations, reseal, then let each engine repair its memoized models.
  PrepareAndSeal();
  // Turn the board's epoch BEFORE any engine repairs: stale goal verdicts
  // vanish at once, and the first engine to finish repairing republishes
  // the base model under the new epoch for its siblings to adopt.
  if (board_ != nullptr) board_->BeginEpoch(epoch_ + 1);
  Status first_error = Status::OK();
  for (const auto& engine : engines_) {
    engine->ResetStats();
    Status s = engine->ApplyBaseDelta(delta);
    if (!s.ok()) {
      // All-or-nothing per engine: an engine whose repair aborted midway
      // must not serve the new epoch half-repaired. Force a from-scratch
      // Init (cheap — models rebuild lazily on the next query) so the
      // engine re-enters the pool coherent, and surface the first error.
      Status reinit = engine->Init();
      if (first_error.ok()) first_error = reinit.ok() ? s : reinit;
    }
    repair_stats_.Merge(engine->stats());
  }
  ++epoch_;
  out.epoch = epoch_;
  if (!first_error.ok()) return first_error;
  return out;
}

int64_t QueryServer::epoch() const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  return epoch_;
}

QueryServer::Counters QueryServer::counters() const {
  std::shared_lock<std::shared_mutex> lock(epoch_mu_);
  Counters c;
  c.queries = queries_.load(std::memory_order_relaxed);
  c.mutation_batches = mutation_batches_;
  c.noop_batches = noop_batches_;
  c.base_facts = base_.size();
  c.arena_bytes = base_.ArenaBytes();
  c.sorted_probes = base_.sorted_probes();
  c.index_sort_micros = base_.index_sort_micros();
  c.cache_hits_cross_query =
      cache_hits_cross_query_.load(std::memory_order_relaxed);
  c.contexts_reused = contexts_reused_.load(std::memory_order_relaxed);
  c.restricted_rejections =
      restricted_rejections_.load(std::memory_order_relaxed);
  // Queries accumulate into the atomics; epoch-turn recompiles land in the
  // merged repair stats. Init-time compiles are counted by neither (the
  // engines' stats are reset before their first lease).
  c.vm_programs_compiled =
      vm_programs_compiled_.load(std::memory_order_relaxed) +
      repair_stats_.vm_programs_compiled;
  c.vm_ops_executed = vm_ops_executed_.load(std::memory_order_relaxed) +
                      repair_stats_.vm_ops_executed;
  c.repair = repair_stats_;
  return c;
}

}  // namespace hypo
