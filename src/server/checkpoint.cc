#include "server/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "base/checksum.h"
#include "base/failpoint.h"
#include "base/io_util.h"

namespace hypo {

namespace {

constexpr char kMagic[8] = {'H', 'Y', 'P', 'O', 'C', 'K', 'P', '1'};
constexpr uint32_t kVersion = 1;

std::string EpochTag(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(epoch));
  return buf;
}

/// Parses the epoch out of "checkpoint-<epoch>.ckpt"; 0 when `name` is
/// not a checkpoint file (epoch 0 never has a checkpoint — the first
/// possible one is at epoch 1).
uint64_t CheckpointEpochOf(const std::string& name) {
  constexpr std::string_view kPrefix = "checkpoint-";
  constexpr std::string_view kSuffix = ".ckpt";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return 0;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return 0;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return 0;
  }
  uint64_t epoch = 0;
  for (size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    epoch = epoch * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return epoch;
}

bool IsJournalName(const std::string& name) {
  return name.rfind("journal-", 0) == 0 &&
         name.size() > 4 + 8 &&
         name.compare(name.size() - 4, 4, ".log") == 0;
}

StatusOr<RecoveredState> LoadCheckpoint(const std::string& path,
                                        StorageBackend backend) {
  auto bytes_or = ReadFileToString(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::string& bytes = *bytes_or;
  constexpr size_t kHeaderBytes = sizeof(kMagic) + 4 + 4 + 4;
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("checkpoint " + path +
                            " has bad magic or truncated header");
  }
  ByteReader header(std::string_view(bytes).substr(sizeof(kMagic)));
  const uint32_t version = *header.ReadU32();
  if (version != kVersion) {
    return Status::DataLoss("checkpoint " + path +
                            " has unsupported version " +
                            std::to_string(version));
  }
  const uint32_t len = *header.ReadU32();
  const uint32_t crc = *header.ReadU32();
  if (bytes.size() - kHeaderBytes != len) {
    return Status::DataLoss("checkpoint " + path + " payload length " +
                            std::to_string(bytes.size() - kHeaderBytes) +
                            " != framed " + std::to_string(len));
  }
  const std::string_view payload(bytes.data() + kHeaderBytes, len);
  if (Crc32c(payload.data(), payload.size()) != crc) {
    return Status::DataLoss("checkpoint " + path + " checksum mismatch");
  }

  ByteReader r(payload);
  RecoveredState state;
  state.have_checkpoint = true;
  auto epoch = r.ReadU64();
  if (!epoch.ok()) return Status::DataLoss("checkpoint " + path + " short");
  state.checkpoint_epoch = *epoch;
  auto program = r.ReadLengthPrefixed();
  if (!program.ok()) {
    return Status::DataLoss("checkpoint " + path + " short (program)");
  }
  state.program = std::string(*program);

  state.symbols = std::make_shared<SymbolTable>();
  auto npreds = r.ReadU32();
  if (!npreds.ok()) {
    return Status::DataLoss("checkpoint " + path + " short (predicates)");
  }
  for (uint32_t i = 0; i < *npreds; ++i) {
    auto name = r.ReadLengthPrefixed();
    if (!name.ok()) {
      return Status::DataLoss("checkpoint " + path + " short (predicate " +
                              std::to_string(i) + ")");
    }
    auto arity = r.ReadU32();
    if (!arity.ok()) {
      return Status::DataLoss("checkpoint " + path + " short (predicate " +
                              std::to_string(i) + ")");
    }
    auto id = state.symbols->InternPredicate(*name,
                                             static_cast<int>(*arity));
    if (!id.ok() || *id != static_cast<PredicateId>(i)) {
      return Status::DataLoss("checkpoint " + path +
                              " symbol dump is not in id order");
    }
  }
  auto nconsts = r.ReadU32();
  if (!nconsts.ok()) {
    return Status::DataLoss("checkpoint " + path + " short (constants)");
  }
  for (uint32_t i = 0; i < *nconsts; ++i) {
    auto name = r.ReadLengthPrefixed();
    if (!name.ok()) {
      return Status::DataLoss("checkpoint " + path + " short (constant " +
                              std::to_string(i) + ")");
    }
    if (state.symbols->InternConst(*name) != static_cast<ConstId>(i)) {
      return Status::DataLoss("checkpoint " + path +
                              " symbol dump is not in id order");
    }
  }

  auto relations = r.ReadLengthPrefixed();
  if (!relations.ok()) {
    return Status::DataLoss("checkpoint " + path + " short (relations)");
  }
  if (r.remaining() != 0) {
    return Status::DataLoss("checkpoint " + path + " has trailing bytes");
  }
  state.base = std::make_unique<Database>(state.symbols, backend);
  Status s = state.base->DeserializeRelations(*relations);
  if (!s.ok()) {
    return Status::DataLoss("checkpoint " + path +
                            " relation snapshot invalid: " + s.message());
  }
  return state;
}

}  // namespace

std::string CheckpointPath(const std::string& dir, uint64_t epoch) {
  return dir + "/checkpoint-" + EpochTag(epoch) + ".ckpt";
}

std::string JournalPath(const std::string& dir, uint64_t epoch) {
  return dir + "/journal-" + EpochTag(epoch) + ".log";
}

Status WriteCheckpoint(const std::string& dir, uint64_t epoch,
                       std::string_view program, const SymbolTable& symbols,
                       const Database& base, std::string* out_path) {
  std::string payload;
  AppendU64(&payload, epoch);
  AppendLengthPrefixed(&payload, program);
  AppendU32(&payload, static_cast<uint32_t>(symbols.num_predicates()));
  for (PredicateId p = 0; p < symbols.num_predicates(); ++p) {
    AppendLengthPrefixed(&payload, symbols.PredicateName(p));
    AppendU32(&payload, static_cast<uint32_t>(symbols.PredicateArity(p)));
  }
  AppendU32(&payload, static_cast<uint32_t>(symbols.num_consts()));
  for (ConstId c = 0; c < symbols.num_consts(); ++c) {
    AppendLengthPrefixed(&payload, symbols.ConstName(c));
  }
  std::string relations;
  base.SerializeRelations(&relations);
  AppendLengthPrefixed(&payload, relations);

  std::string file(kMagic, sizeof(kMagic));
  AppendU32(&file, kVersion);
  AppendU32(&file, static_cast<uint32_t>(payload.size()));
  AppendU32(&file, Crc32c(payload.data(), payload.size()));
  file.append(payload);

  const std::string final_path = CheckpointPath(dir, epoch);
  const std::string tmp_path = final_path + ".tmp";
  {
    HYPO_FAILPOINT("checkpoint.write");
    auto fd = OpenForWrite(tmp_path, /*truncate=*/true);
    if (!fd.ok()) return fd.status();
    Status s = WriteFully(fd->get(), file, tmp_path);
    if (!s.ok()) return s;
    HYPO_FAILPOINT("checkpoint.fsync");
    s = FsyncFd(fd->get(), tmp_path);
    if (!s.ok()) return s;
  }
  // Publication must be all-or-nothing: if the rename lands but the
  // directory fsync fails, the new checkpoint is visible while the caller
  // will keep appending to the OLD journal — recovery would then prefer
  // the new checkpoint and silently drop those later records. Un-publish
  // (remove the renamed file) before reporting failure so the previous
  // checkpoint + journal stay the single authoritative lineage.
  bool renamed = false;
  Status s = [&]() -> Status {
    HYPO_FAILPOINT("checkpoint.rename");
    Status r = RenameFile(tmp_path, final_path);
    if (!r.ok()) return r;
    renamed = true;
    HYPO_FAILPOINT("checkpoint.dirsync");
    return FsyncPath(dir);
  }();
  if (!s.ok()) {
    if (renamed) {
      (void)RemoveFile(final_path);
      (void)FsyncPath(dir);
    }
    return s;
  }
  if (out_path != nullptr) *out_path = final_path;
  return Status::OK();
}

StatusOr<RecoveredState> RecoverDataDir(const std::string& dir,
                                        StorageBackend backend) {
  Status s = EnsureDir(dir);
  if (!s.ok()) return s;
  auto names = ListDir(dir);
  if (!names.ok()) return names.status();

  uint64_t best = 0;
  for (const std::string& name : *names) {
    best = std::max(best, CheckpointEpochOf(name));
  }
  RecoveredState state;
  if (best == 0) {
    // The server seeds an initial checkpoint before its first journal, so
    // a journal with no checkpoint at all can only mean the checkpoint
    // was lost — refusing is the difference between "fresh start" and
    // silently discarding committed state.
    for (const std::string& name : *names) {
      if (IsJournalName(name)) {
        return Status::DataLoss("data dir " + dir + " holds journal " +
                                name + " but no checkpoint");
      }
    }
    return state;  // Fresh directory: no committed state.
  }

  auto loaded = LoadCheckpoint(CheckpointPath(dir, best), backend);
  if (!loaded.ok()) return loaded.status();
  state = std::move(*loaded);
  if (state.checkpoint_epoch != best) {
    return Status::DataLoss("checkpoint " + CheckpointPath(dir, best) +
                            " is stamped epoch " +
                            std::to_string(state.checkpoint_epoch));
  }
  state.epoch = state.checkpoint_epoch;

  const std::string journal = JournalPath(dir, state.checkpoint_epoch);
  if (!FileExists(journal)) {
    // Crash between checkpoint rename and journal rotation: the journal
    // legitimately does not exist yet. Nothing to replay.
    return state;
  }
  auto replay = ReplayJournal(journal, state.checkpoint_epoch);
  if (!replay.ok()) return replay.status();
  state.torn_records_dropped = replay->torn_records_dropped;
  state.journal_valid_bytes = replay->valid_bytes;
  state.journal_reusable = replay->valid_bytes > 0;
  state.epoch = state.checkpoint_epoch + replay->records.size();
  state.records = std::move(replay->records);
  return state;
}

Status GarbageCollectDataDir(const std::string& dir, uint64_t keep_epoch) {
  auto names = ListDir(dir);
  if (!names.ok()) return names.status();
  Status first = Status::OK();
  for (const std::string& name : *names) {
    const std::string path = dir + "/" + name;
    bool drop = false;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      drop = true;
    } else if (uint64_t e = CheckpointEpochOf(name); e != 0) {
      drop = e < keep_epoch;
    } else if (IsJournalName(name)) {
      drop = path != JournalPath(dir, keep_epoch);
    }
    if (!drop) continue;
    Status s = RemoveFile(path);
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

}  // namespace hypo
