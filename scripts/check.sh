#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# This is the line CI and reviewers run; it must pass on every commit.
#
# Environment knobs (all optional):
#   BUILD_TYPE  CMake build type (Debug, Release, RelWithDebInfo, ...).
#   SANITIZE    comma-separated sanitizers for -fsanitize=, e.g.
#               "address,undefined" or "thread" (the TSan run CI uses to
#               race-check the parallel fixpoint); implies frame pointers.
#   BUILD_DIR   build tree to use (default: build, or build-<sanitize>
#               when SANITIZE is set, so sanitized trees don't clobber
#               the regular one).
#   TEST_FILTER ctest -R regex to run a subset of the suite (e.g.
#               "parallel|abort" for the threaded tests only).
#   FAILPOINTS  1/0 to force the deterministic fault-injection sites on
#               or off (-DHYPO_FAILPOINTS=...); unset leaves the CMake
#               default (on except in Release builds).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake_args=()
build_dir="${BUILD_DIR:-build}"
if [ -n "${BUILD_TYPE:-}" ]; then
  cmake_args+=("-DCMAKE_BUILD_TYPE=${BUILD_TYPE}")
fi
if [ -n "${FAILPOINTS:-}" ]; then
  case "${FAILPOINTS}" in
    1|ON|on) cmake_args+=("-DHYPO_FAILPOINTS=ON") ;;
    0|OFF|off) cmake_args+=("-DHYPO_FAILPOINTS=OFF") ;;
    *) echo "FAILPOINTS must be 1/0 (got '${FAILPOINTS}')" >&2; exit 2 ;;
  esac
fi
if [ -n "${SANITIZE:-}" ]; then
  flags="-fsanitize=${SANITIZE} -fno-omit-frame-pointer"
  cmake_args+=("-DCMAKE_CXX_FLAGS=${flags}"
               "-DCMAKE_EXE_LINKER_FLAGS=${flags}")
  if [ -z "${BUILD_DIR:-}" ]; then
    build_dir="build-$(echo "${SANITIZE}" | tr ',' '-')"
  fi
fi

cmake -B "$build_dir" -S . "${cmake_args[@]}"
cmake --build "$build_dir" -j "$(nproc)"
cd "$build_dir" && ctest --output-on-failure -j "$(nproc)" \
  ${TEST_FILTER:+-R "$TEST_FILTER"}
