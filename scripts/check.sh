#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# This is the line CI and reviewers run; it must pass on every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build && ctest --output-on-failure -j "$(nproc)"
