#!/usr/bin/env bash
# Runs the engine benchmark suites and records them as one labelled run in
# BENCH_engine.json at the repo root (replacing any earlier run with the
# same label, so re-runs are idempotent). See README "Benchmark
# snapshots" for the file's schema.
#
# Usage: scripts/bench_snapshot.sh <label> [build_dir] [benchmark_filter]
#   label             e.g. "seed" or "pr1-interned-contexts"
#   build_dir         CMake build tree to take binaries from (default: build)
#   benchmark_filter  optional --benchmark_filter regex
#
# The storage backend is inherited from HYPO_STORAGE ("hash" selects the
# reference hash path, anything else the columnar default) and recorded
# in the run's meta, so back-to-back backend ladders are two invocations:
#   HYPO_STORAGE=hash scripts/bench_snapshot.sh pr7-hash
#   scripts/bench_snapshot.sh pr7-columnar
# The executor is likewise inherited from HYPO_EXEC ("interp" selects the
# plan walker, anything else the bytecode VM) and recorded in meta:
#   HYPO_EXEC=interp scripts/bench_snapshot.sh pr9-interp
#   scripts/bench_snapshot.sh pr9-vm
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:?usage: bench_snapshot.sh <label> [build_dir] [benchmark_filter]}"
build="${2:-build}"
filter="${3:-}"

suites=(bench_engine bench_deletion bench_chains)
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

for suite in "${suites[@]}"; do
  args=("--benchmark_out=$tmp/$suite.json" --benchmark_out_format=json)
  if [ -n "$filter" ]; then args+=("--benchmark_filter=$filter"); fi
  "$build/bench/$suite" "${args[@]}"
done

python3 - "$label" "$tmp" "${suites[@]}" <<'EOF'
import json, os, sys

label, tmp = sys.argv[1], sys.argv[2]
suites = sys.argv[3:]
path = "BENCH_engine.json"
doc = {"schema": "hypo-bench-v1", "runs": []}
if os.path.exists(path):
    with open(path) as f:
        doc = json.load(f)
# Hardware context: thread-scaling numbers are meaningless without it.
cpu = "unknown"
try:
    with open("/proc/cpuinfo") as f:
        for line in f:
            if line.startswith("model name"):
                cpu = line.split(":", 1)[1].strip()
                break
except OSError:
    pass
storage = "hash" if os.environ.get("HYPO_STORAGE") == "hash" else "columnar"
executor = "interp" if os.environ.get("HYPO_EXEC") == "interp" else "vm"
run = {
    "label": label,
    "meta": {
        "nproc": os.cpu_count(),
        "cpu": cpu,
        "storage": storage,
        "executor": executor,
    },
    "suites": {},
}
for suite in suites:
    # A filter that matches nothing in a suite leaves an empty out file;
    # skip it rather than recording an unparseable entry.
    suite_path = os.path.join(tmp, suite + ".json")
    if os.path.getsize(suite_path) == 0:
        continue
    with open(suite_path) as f:
        run["suites"][suite] = json.load(f)
doc["runs"] = [r for r in doc.get("runs", []) if r.get("label") != label]
doc["runs"].append(run)
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print("recorded run '%s' in %s" % (label, path))
EOF
