#!/usr/bin/env bash
# End-to-end smoke test of the hypo_serve line protocol: drive one
# scripted insert/retract/query session against a built binary and check
# every response, including that the incremental answers track the epoch
# turns and that the process shuts down cleanly.
#
# Usage: scripts/server_smoke.sh [build_dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
serve="$build/examples/hypo_serve"
[ -x "$serve" ] || { echo "missing $serve (build first)" >&2; exit 2; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/program.hdl" <<'EOF'
reach(X, Y) <- edge(X, Y).
reach(X, Z) <- edge(X, Y), reach(Y, Z).
edge(a, b).
edge(b, c).
EOF

cat > "$tmp/session" <<'EOF'
ping
query reach(a, X)
insert edge(c, d)
query reach(a, d)
retract edge(a, b)
query reach(a, X)
begin
insert edge(a, b)
retract edge(b, c)
commit
query reach(a, X)
epoch
stats
shutdown
EOF

cat > "$tmp/expected" <<'EOF'
ok pong
ok 2 answers
- X=b
- X=c
ok epoch=2 changed=1
ok yes
ok epoch=3 changed=1
ok 0 answers
ok batch
ok queued
ok queued
ok epoch=4 changed=2
ok 1 answers
- X=b
ok epoch=4
ok bye
EOF

rc=0
"$serve" "$tmp/program.hdl" --engine bottomup --pool 2 \
  < "$tmp/session" > "$tmp/got" 2> "$tmp/stderr" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "hypo_serve exited $rc" >&2
  cat "$tmp/stderr" >&2
  exit 1
fi

# The stats line carries live counters (timings vary); check it separately.
grep -E '^ok epoch=4 queries=4 mutations=3 ' "$tmp/got" > /dev/null || {
  echo "stats line mismatch:" >&2
  grep '^ok epoch=4 queries' "$tmp/got" >&2 || true
  exit 1
}
grep -v '^ok epoch=4 queries=' "$tmp/got" | diff -u "$tmp/expected" - || {
  echo "session transcript mismatch (see diff above)" >&2
  exit 1
}
echo "server smoke: OK"
