#!/usr/bin/env bash
# End-to-end smoke test of the hypo_serve line protocol: drive one
# scripted insert/retract/query session against a built binary and check
# every response, including that the incremental answers track the epoch
# turns and that the process shuts down cleanly.
#
# Usage: scripts/server_smoke.sh [build_dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
serve="$build/examples/hypo_serve"
[ -x "$serve" ] || { echo "missing $serve (build first)" >&2; exit 2; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/program.hdl" <<'EOF'
reach(X, Y) <- edge(X, Y).
reach(X, Z) <- edge(X, Y), reach(Y, Z).
edge(a, b).
edge(b, c).
EOF

cat > "$tmp/session" <<'EOF'
ping
query reach(a, X)
insert edge(c, d)
query reach(a, d)
retract edge(a, b)
query reach(a, X)
begin
insert edge(a, b)
retract edge(b, c)
commit
query reach(a, X)
epoch
stats
shutdown
EOF

cat > "$tmp/expected" <<'EOF'
ok pong
ok 2 answers
- X=b
- X=c
ok epoch=2 changed=1
ok yes
ok epoch=3 changed=1
ok 0 answers
ok batch
ok queued
ok queued
ok epoch=4 changed=2
ok 1 answers
- X=b
ok epoch=4
ok bye
EOF

rc=0
"$serve" "$tmp/program.hdl" --engine bottomup --pool 2 \
  < "$tmp/session" > "$tmp/got" 2> "$tmp/stderr" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "hypo_serve exited $rc" >&2
  cat "$tmp/stderr" >&2
  exit 1
fi

# The stats line carries live counters (timings vary); check it separately.
grep -E '^ok epoch=4 queries=4 mutations=3 ' "$tmp/got" > /dev/null || {
  echo "stats line mismatch:" >&2
  grep '^ok epoch=4 queries' "$tmp/got" >&2 || true
  exit 1
}
grep -v '^ok epoch=4 queries=' "$tmp/got" | diff -u "$tmp/expected" - || {
  echo "session transcript mismatch (see diff above)" >&2
  exit 1
}

# Scenario 2: repeated queries across epochs against a restricted program,
# with the cross-query cache on (default) and off (--no-cross-cache). The
# answer transcripts must be identical either way; the stats line must
# surface the new counters, and the undeclared hypothetical must be
# rejected with the typed error without killing the session.
cat > "$tmp/program2.hdl" <<'EOF'
:- assumable edge/2.
reach(X, Y) <- edge(X, Y).
reach(X, Z) <- edge(X, Y), reach(Y, Z).
edge(a, b).
edge(b, c).
EOF

cat > "$tmp/session2" <<'EOF'
query reach(a, X)
query reach(a, X)
query reach(a, c)[add: edge(x, y)]
query reach(a, c)[add: reach(x, y)]
insert edge(c, d)
query reach(a, X)
query reach(a, X)
stats
shutdown
EOF

cat > "$tmp/expected2" <<'EOF'
ok 2 answers
- X=b
- X=c
ok 2 answers
- X=b
- X=c
ok yes
ok epoch=2 changed=1
ok 3 answers
- X=b
- X=c
- X=d
ok 3 answers
- X=b
- X=c
- X=d
ok bye
EOF

for flags in "" "--no-cross-cache"; do
  rc=0
  # shellcheck disable=SC2086  # $flags is intentionally word-split.
  "$serve" "$tmp/program2.hdl" --engine bottomup --pool 2 $flags \
    < "$tmp/session2" > "$tmp/got2" 2> "$tmp/stderr2" || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "hypo_serve ($flags) exited $rc" >&2
    cat "$tmp/stderr2" >&2
    exit 1
  fi
  grep '^err FailedPrecondition: hypothetical insertion of restricted' \
    "$tmp/got2" > /dev/null || {
    echo "missing typed restricted-predicate rejection ($flags):" >&2
    cat "$tmp/got2" >&2
    exit 1
  }
  # No trailing anchor: the stats line has grown fields past these since.
  grep -E '^ok epoch=2 .* cache_hits_cross_query=[0-9]+ contexts_reused=[0-9]+ restricted_rejections=1( |$)' \
    "$tmp/got2" > /dev/null || {
    echo "stats line missing cross-query counters ($flags):" >&2
    grep '^ok epoch=2 queries' "$tmp/got2" >&2 || true
    exit 1
  }
  grep -v -e '^ok epoch=2 queries=' -e '^err FailedPrecondition' "$tmp/got2" \
    | diff -u "$tmp/expected2" - || {
    echo "restricted-session transcript mismatch ($flags, see diff above)" >&2
    exit 1
  }
done

# The escape hatch really disables the board: no cross-query hits.
"$serve" "$tmp/program2.hdl" --engine bottomup --pool 2 --no-cross-cache \
  < "$tmp/session2" 2> /dev/null \
  | grep -E '^ok epoch=2 .* cache_hits_cross_query=0 ' > /dev/null || {
  echo "--no-cross-cache still reported cross-query cache hits" >&2
  exit 1
}

# Scenario 3: crash safety. Run a durable server, SIGKILL it after two
# acknowledged mutations (no shutdown, no final checkpoint), restart on
# the same --data-dir, and require the acknowledged state back: the
# journal replay is the only thing standing between the ack and the kill.
data="$tmp/data3"
mkfifo "$tmp/in3"
"$serve" "$tmp/program.hdl" --engine bottomup --data-dir "$data" \
  < "$tmp/in3" > "$tmp/got3" 2> "$tmp/stderr3" &
pid=$!
exec 3> "$tmp/in3"
echo "insert edge(c, d)" >&3
echo "insert edge(d, e)" >&3
# Wait for both acks (fsync=always: acked means journaled) before killing.
acked=0
for _ in $(seq 100); do
  if grep -q '^ok epoch=3 ' "$tmp/got3" 2>/dev/null; then acked=1; break; fi
  sleep 0.1
done
[ "$acked" -eq 1 ] || {
  echo "durable mutations were never acknowledged:" >&2
  cat "$tmp/got3" "$tmp/stderr3" >&2 || true
  exit 1
}
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
exec 3>&-

cat > "$tmp/session3" <<'EOF'
epoch
query reach(a, X)
insert edge(e, f)
stats
shutdown
EOF
rc=0
"$serve" "$tmp/program.hdl" --engine bottomup --data-dir "$data" \
  < "$tmp/session3" > "$tmp/got4" 2> "$tmp/stderr4" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "recovered hypo_serve exited $rc" >&2
  cat "$tmp/stderr4" >&2
  exit 1
fi
grep -q '^ok epoch=3$' "$tmp/got4" || {
  echo "recovery lost the killed server's epoch:" >&2
  cat "$tmp/got4" >&2
  exit 1
}
grep -q '^ok 4 answers$' "$tmp/got4" || {
  echo "recovered reach(a, X) answer count wrong:" >&2
  cat "$tmp/got4" >&2
  exit 1
}
for v in b c d e; do
  grep -q "^- X=$v\$" "$tmp/got4" || {
    echo "recovered answers missing X=$v:" >&2
    cat "$tmp/got4" >&2
    exit 1
  }
done
grep -q '^ok epoch=4 changed=1$' "$tmp/got4" || {
  echo "recovered server refused a new mutation:" >&2
  cat "$tmp/got4" >&2
  exit 1
}
grep -E '^ok epoch=4 .* recoveries=1 .*read_only=0$' "$tmp/got4" > /dev/null || {
  echo "stats line missing recovery counters:" >&2
  grep '^ok epoch=4 queries' "$tmp/got4" >&2 || true
  exit 1
}

echo "server smoke: OK"
