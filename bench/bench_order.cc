// E8 — §6.2.1: hypothetically asserting linear orders.
//
// Paper claim: when no order exists on the domain, a rulebase can assert
// every possible order, one after another; for generic queries the result
// is order-independent, so a yes-instance stops at the first order while
// a no-instance must exhaust all n! of them.
//
// Measured: the yes/no asymmetry of the order-assertion loop as the
// domain grows — linear-ish for yes, factorial for no.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "encode/order.h"
#include "parser/parser.h"

namespace hypo {
namespace {

/// Builds the order-assertion rules over a toy `accept`: accept <- w,
/// with the witness present (yes) or absent (no).
ProgramFixture OrderFixture(int n, bool witness) {
  ProgramFixture fixture;
  Status s = AppendOrderAssertionRules(OrderNames(), "accept", "yes",
                                       &fixture.rules);
  HYPO_CHECK(s.ok()) << s;
  auto extra = ParseRuleBase("accept <- w.", fixture.symbols);
  HYPO_CHECK(extra.ok());
  HYPO_CHECK(fixture.rules.Merge(*extra).ok());
  for (int i = 1; i <= n; ++i) {
    HYPO_CHECK(fixture.db.Insert("d", {"x" + std::to_string(i)}).ok());
  }
  if (witness) {
    HYPO_CHECK(fixture.db.Insert("w", {}).ok());
  }
  return fixture;
}

void BM_OrderAssertion(benchmark::State& state) {
  bool witness = state.range(0) == 1;
  int n = static_cast<int>(state.range(1));
  ProgramFixture fixture = OrderFixture(n, witness);
  Query query = bench::MustParseQuery(fixture, "yes");
  bench::ProveOnce(state, bench::Kind::kTabled, fixture, query,
                   witness ? 1 : 0);
  state.SetLabel(std::string(witness ? "yes (first order)"
                                     : "no (all n! orders)") +
                 " n=" + std::to_string(n));
}
BENCHMARK(BM_OrderAssertion)
    ->ArgsProduct({{0, 1}, {2, 3, 4, 5, 6}});

}  // namespace
}  // namespace hypo

BENCHMARK_MAIN();
