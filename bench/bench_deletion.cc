// Extension — hypothetical deletion ([4]): counterfactual robustness.
//
// The paper notes (§1) that allowing hypothetical deletions raises
// data-complexity from PSPACE to EXPTIME; this library supports
// `A[del: C]` in the general tabled engine. The benchmark is the natural
// counterfactual workload: single-link failure analysis —
//
//   cut_survives(U, V) <- link(U, V), reach_goal[del: link(U, V)].
//   fragile <- link(U, V), ~cut_survives(U, V).
//   robust <- ~fragile.
//
// over reachability. Measured: cost vs. graph size for robust (dense,
// redundant graphs) and fragile (sparse path graphs) instances — one
// deletion state per edge, each with its own memoized evaluation.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "queries/graphs.h"

namespace hypo {
namespace {

ProgramFixture RobustnessFixture(const Graph& graph, int src, int dst) {
  ProgramFixture fixture;
  auto rules = ParseRuleBase(
      "reach(X, Y) <- link(X, Y).\n"
      "reach(X, Y) <- link(X, Z), reach(Z, Y).\n"
      "reach_goal <- endpoints(S, D), reach(S, D).\n"
      "cut_survives(U, V) <- link(U, V), reach_goal[del: link(U, V)].\n"
      "fragile <- link(U, V), ~cut_survives(U, V).\n"
      "robust <- reach_goal, ~fragile.\n",
      fixture.symbols);
  HYPO_CHECK(rules.ok()) << rules.status();
  fixture.rules = std::move(rules).value();
  auto name = [](int v) { return "v" + std::to_string(v); };
  for (const auto& [from, to] : graph.edges) {
    HYPO_CHECK(fixture.db.Insert("link", {name(from), name(to)}).ok());
  }
  HYPO_CHECK(fixture.db.Insert("endpoints", {name(src), name(dst)}).ok());
  return fixture;
}

void BM_SingleLinkFailure(benchmark::State& state) {
  bool dense = state.range(0) == 1;
  int n = static_cast<int>(state.range(1));
  Graph graph = dense ? MakeCompleteGraph(n) : MakePathGraph(n);
  ProgramFixture fixture = RobustnessFixture(graph, 0, n - 1);
  Query query = bench::MustParseQuery(fixture, "robust");
  // Complete graphs survive any single cut (n >= 3); paths never do.
  bench::ProveOnce(state, bench::Kind::kTabled, fixture, query,
                   dense && n >= 3 ? 1 : 0);
  state.counters["edges"] = static_cast<double>(graph.edges.size());
  state.SetLabel(std::string(dense ? "complete" : "path") +
                 " n=" + std::to_string(n));
}
BENCHMARK(BM_SingleLinkFailure)
    ->ArgsProduct({{0, 1}, {4, 6, 8}});

}  // namespace
}  // namespace hypo

HYPO_BENCHMARK_MAIN_WITH_JSON();
