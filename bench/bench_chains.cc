// E2 — Examples 4-5: add cascades and the linear-order loop.
//
// Paper claim: R, DB ⊢ A_i iff R, DB + {B_i..B_n} ⊢ D (Example 4), and
// the FIRST/NEXT/LAST loop inserts B along an entire stored chain
// (Example 5) — the basic composition patterns for hypothetical
// insertions.
//
// Measured: evaluation cost vs chain length n; linear recursion over a
// growing overlay should stay near-linear in n for the goal-directed
// engines.

#include "bench/bench_util.h"
#include "queries/chains.h"

namespace hypo {
namespace {

using bench::Kind;

void BM_AddCascade(benchmark::State& state) {
  Kind kind = static_cast<Kind>(state.range(0));
  int n = static_cast<int>(state.range(1));
  ProgramFixture fixture = MakeAddCascadeFixture(n, /*db_prefix=*/0);
  Query query = bench::MustParseQuery(fixture, "a1");
  bench::ProveOnce(state, kind, fixture, query, /*expected=*/1);
  state.SetLabel(std::string(bench::KindName(kind)) +
                 " cascade n=" + std::to_string(n));
}
BENCHMARK(BM_AddCascade)
    ->ArgsProduct({{0, 1}, {4, 8, 16, 32, 64}});

void BM_OrderLoop(benchmark::State& state) {
  Kind kind = static_cast<Kind>(state.range(0));
  int n = static_cast<int>(state.range(1));
  ProgramFixture fixture = MakeOrderLoopFixture(n);
  Query query = bench::MustParseQuery(fixture, "a");
  bench::ProveOnce(state, kind, fixture, query, /*expected=*/1);
  state.SetLabel(std::string(bench::KindName(kind)) +
                 " order loop n=" + std::to_string(n));
}
BENCHMARK(BM_OrderLoop)
    ->ArgsProduct({{0, 1}, {4, 8, 16, 32, 64}});

}  // namespace
}  // namespace hypo

BENCHMARK_MAIN();
