#ifndef HYPO_BENCH_BENCH_UTIL_H_
#define HYPO_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "base/logging.h"
#include "engine/bottom_up.h"
#include "engine/engine.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "parser/parser.h"
#include "queries/fixture.h"

namespace hypo {
namespace bench {

/// Engines a benchmark can run against.
enum class Kind { kTabled = 0, kStratified = 1, kBottomUp = 2 };

inline const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kTabled: return "tabled";
    case Kind::kStratified: return "stratified";
    case Kind::kBottomUp: return "bottom-up";
  }
  return "?";
}

inline std::unique_ptr<Engine> MakeEngine(
    Kind kind, const RuleBase* rules, const Database* db,
    EngineOptions options = EngineOptions()) {
  switch (kind) {
    case Kind::kTabled:
      return std::make_unique<TabledEngine>(rules, db, options);
    case Kind::kStratified:
      return std::make_unique<StratifiedProver>(rules, db, options);
    case Kind::kBottomUp:
      return std::make_unique<BottomUpEngine>(rules, db, options);
  }
  return nullptr;
}

/// Parses `text` as a query against the fixture's symbols, aborting on
/// error (benchmarks are trusted code).
inline Query MustParseQuery(const ProgramFixture& fixture,
                            const std::string& text) {
  auto query =
      ParseQuery(text, const_cast<SymbolTable*>(&fixture.rules.symbols()));
  HYPO_CHECK(query.ok()) << query.status();
  return std::move(query).value();
}

/// Proves `query` with a fresh engine, reporting stats as counters and
/// checking the expected answer when `expected` is 0/1 (-1 skips).
inline void ProveOnce(benchmark::State& state, Kind kind,
                      const ProgramFixture& fixture, const Query& query,
                      int expected = -1) {
  int64_t goals = 0;
  int64_t states = 0;
  for (auto _ : state) {
    auto engine = MakeEngine(kind, &fixture.rules, &fixture.db);
    auto result = engine->ProveQuery(query);
    HYPO_CHECK(result.ok()) << result.status();
    if (expected >= 0) {
      HYPO_CHECK(*result == (expected == 1)) << "wrong answer in benchmark";
    }
    benchmark::DoNotOptimize(*result);
    goals = engine->stats().goals_expanded;
    states = engine->stats().states_evaluated;
  }
  state.counters["goals"] = static_cast<double>(goals);
  state.counters["db_states"] = static_cast<double>(states);
}

}  // namespace bench
}  // namespace hypo

#endif  // HYPO_BENCH_BENCH_UTIL_H_
