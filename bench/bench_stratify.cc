// E5 — Lemma 1: deciding and computing linear stratification is
// polynomial in the rulebase size.
//
// Paper claim: "determining whether R is linearly stratified is decidable
// in polynomial time ... Σ_i and Δ_i can be computed in polynomial time";
// the relaxation loop runs O(m^2) iterations at worst.
//
// Measured: ComputeLinearStratification wall time vs number of rules for
// (a) wide rulebases (many independent strata ladders) and (b) deep
// rulebases (one ladder of k strata — the relaxation's worst direction,
// since partition numbers must climb to 2k). The growth should be
// polynomial (roughly quadratic for the deep family).

#include <benchmark/benchmark.h>

#include "analysis/stratification.h"
#include "base/logging.h"
#include "queries/ladder.h"

namespace hypo {
namespace {

void BM_StratifyDeepLadder(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  ProgramFixture fixture = MakeStrataLadderFixture(k);
  for (auto _ : state) {
    auto strat = ComputeLinearStratification(fixture.rules);
    HYPO_CHECK(strat.ok()) << strat.status();
    HYPO_CHECK(strat->num_strata == k);
    benchmark::DoNotOptimize(strat->num_strata);
  }
  state.counters["rules"] = fixture.rules.num_rules();
  state.SetLabel("deep k=" + std::to_string(k));
}
BENCHMARK(BM_StratifyDeepLadder)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_StratifyWide(benchmark::State& state) {
  // Many independent 2-strata ladders merged into one rulebase.
  int copies = static_cast<int>(state.range(0));
  ProgramFixture fixture = MakeStrataLadderFixture(2);
  for (int i = 1; i < copies; ++i) {
    // Each copy gets fresh predicate names by re-generating with deeper
    // k and slicing: simplest is to extend the same fixture with another
    // independent ladder whose names embed the copy index.
    ProgramFixture extra = MakeStrataLadderFixture(2);
    // Rebuild into the shared symbol table with prefixed names.
    for (const Rule& rule : extra.rules.rules()) {
      Rule copy = rule;
      // Rename by re-interning every predicate with a per-copy prefix.
      auto rename = [&](Atom* atom) {
        const std::string& base_name =
            extra.rules.symbols().PredicateName(atom->predicate);
        auto id = fixture.symbols->InternPredicate(
            "c" + std::to_string(i) + "_" + base_name,
            static_cast<int>(atom->args.size()));
        HYPO_CHECK(id.ok());
        atom->predicate = *id;
      };
      rename(&copy.head);
      for (Premise& p : copy.premises) {
        rename(&p.atom);
        for (Atom& a : p.additions) rename(&a);
      }
      fixture.rules.AddRule(copy);
    }
  }
  for (auto _ : state) {
    auto strat = ComputeLinearStratification(fixture.rules);
    HYPO_CHECK(strat.ok()) << strat.status();
    benchmark::DoNotOptimize(strat->num_strata);
  }
  state.counters["rules"] = fixture.rules.num_rules();
  state.SetLabel("wide copies=" + std::to_string(copies));
}
BENCHMARK(BM_StratifyWide)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_RejectNonLinear(benchmark::State& state) {
  // Failing fast on Example 10 (non-linear + hypothetical recursion).
  ProgramFixture fixture = MakeExample10Fixture();
  for (auto _ : state) {
    Status s = CheckLinearlyStratifiable(fixture.rules);
    HYPO_CHECK(!s.ok());
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetLabel("example 10 rejection");
}
BENCHMARK(BM_RejectNonLinear);

}  // namespace
}  // namespace hypo

BENCHMARK_MAIN();
