#ifndef HYPO_BENCH_BENCH_JSON_H_
#define HYPO_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

/// Drop-in replacement for BENCHMARK_MAIN() that also emits
/// machine-readable results: when $HYPO_BENCH_JSON is set, it is spliced
/// into the flags as --benchmark_out=<file> --benchmark_out_format=json
/// (before Initialize, so explicit flags still win), keeping the
/// human-readable console table. scripts/bench_snapshot.sh uses this to
/// assemble BENCH_engine.json (see README "Benchmark snapshots").
#define HYPO_BENCHMARK_MAIN_WITH_JSON()                                   \
  int main(int argc, char** argv) {                                       \
    std::vector<std::string> args(argv, argv + argc);                     \
    if (const char* json_path = std::getenv("HYPO_BENCH_JSON")) {         \
      args.insert(args.begin() + 1,                                       \
                  {std::string("--benchmark_out=") + json_path,           \
                   "--benchmark_out_format=json"});                       \
    }                                                                     \
    std::vector<char*> args_cstr;                                         \
    for (std::string& a : args) args_cstr.push_back(a.data());            \
    int args_argc = static_cast<int>(args_cstr.size());                   \
    benchmark::Initialize(&args_argc, args_cstr.data());                  \
    if (benchmark::ReportUnrecognizedArguments(args_argc,                 \
                                               args_cstr.data())) {       \
      return 1;                                                           \
    }                                                                     \
    benchmark::RunSpecifiedBenchmarks();                                  \
    benchmark::Shutdown();                                                \
    return 0;                                                             \
  }

#endif  // HYPO_BENCH_BENCH_JSON_H_
