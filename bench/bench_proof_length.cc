// E10 — Appendix A: proof sequences in linear Σ strata have polynomial
// length O(n^{2·k_i·k_0}).
//
// Paper claim: because Σ recursion is linear, any repetition-free goal
// sequence the top-down procedure generates is polynomially long — the
// heart of the NP upper bound.
//
// Measured: goal expansions and maximum proof depth of the stratified
// prover on the Example 5 order loop and on the parity rulebase as the
// database grows. For the order loop (deterministic chain), goals should
// grow linearly in n — far under the n^2 bound with k_i = k_0 = 1. The
// reported `goals`/`depth` counters are the empirical curve EXPERIMENTS.md
// compares against the bound.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "queries/chains.h"
#include "queries/parity.h"

namespace hypo {
namespace {

void BM_OrderLoopProofLength(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ProgramFixture fixture = MakeOrderLoopFixture(n);
  Query query = bench::MustParseQuery(fixture, "a");
  int64_t goals = 0;
  int64_t depth = 0;
  for (auto _ : state) {
    StratifiedProver prover(&fixture.rules, &fixture.db);
    auto got = prover.ProveQuery(query);
    HYPO_CHECK(got.ok() && *got);
    benchmark::DoNotOptimize(*got);
    goals = prover.stats().goals_expanded;
    depth = prover.stats().max_goal_depth;
  }
  state.counters["goals"] = static_cast<double>(goals);
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["bound_n2"] = static_cast<double>(n) * n;
  state.SetLabel("order loop n=" + std::to_string(n));
}
BENCHMARK(BM_OrderLoopProofLength)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ParityProofDepth(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ProgramFixture fixture = MakeParityFixture(n);
  Query query = bench::MustParseQuery(fixture, n % 2 == 0 ? "even" : "odd");
  int64_t depth = 0;
  for (auto _ : state) {
    StratifiedProver prover(&fixture.rules, &fixture.db);
    auto got = prover.ProveQuery(query);
    HYPO_CHECK(got.ok() && *got);
    benchmark::DoNotOptimize(*got);
    depth = prover.stats().max_goal_depth;
  }
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["bound_n2"] = static_cast<double>(n) * n;
  state.SetLabel("parity n=" + std::to_string(n));
}
BENCHMARK(BM_ParityProofDepth)->Arg(3)->Arg(6)->Arg(9)->Arg(12);

}  // namespace
}  // namespace hypo

BENCHMARK_MAIN();
