// E3 — Example 6: the parity rulebase.
//
// Paper claim: parity (inexpressible in Datalog) is expressible with one
// stratum of linear hypothetical recursion; the rulebase copies a to b
// tuple by tuple, so the search works through the 2^|a| subset states.
//
// Measured: cost vs |a| on all engines, against a direct O(n) count
// baseline; the shape is exponential in |a| for the logical engines
// (subset-state materialization) and flat for the baseline — the price
// the paper's NP bound permits.

#include "bench/bench_util.h"
#include "queries/parity.h"

namespace hypo {
namespace {

using bench::Kind;

void BM_Parity(benchmark::State& state) {
  Kind kind = static_cast<Kind>(state.range(0));
  int n = static_cast<int>(state.range(1));
  ProgramFixture fixture = MakeParityFixture(n);
  Query query = bench::MustParseQuery(fixture, "even");
  bench::ProveOnce(state, kind, fixture, query,
                   /*expected=*/n % 2 == 0 ? 1 : 0);
  state.SetLabel(std::string(bench::KindName(kind)) +
                 " n=" + std::to_string(n));
}
BENCHMARK(BM_Parity)
    ->ArgsProduct({{0, 1, 2}, {2, 4, 6, 8, 10, 12}});

void BM_ParityDirectBaseline(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ProgramFixture fixture = MakeParityFixture(n);
  PredicateId a = fixture.symbols->FindPredicate("a");
  for (auto _ : state) {
    bool even = fixture.db.CountFor(a) % 2 == 0;
    benchmark::DoNotOptimize(even);
  }
  state.SetLabel("direct count n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ParityDirectBaseline)->Arg(2)->Arg(6)->Arg(12);

}  // namespace
}  // namespace hypo

BENCHMARK_MAIN();
