// E6 — Theorem 1: the Σ_k hierarchy, operationally.
//
// Paper claim: rulebases with k strata are data-complete for Σ_k^P; the
// §5.2 procedure evaluates them as a cascade of k PROVE_Σ/PROVE_Δ layers.
//
// Measured: evaluation of the k-strata ladder (Example 9 generalized) as
// k grows — each extra stratum adds one negation boundary the prover must
// resolve via a complete lower-stratum decision — and of Example 8's
// 1-vs-2 strata pair on one graph. Cost should grow with k (linearly for
// the ladder: each stratum is constant work) and jump between the yes
// query (stratum 1, early exit) and the no query (stratum 2, exhaustive).

#include "bench/bench_util.h"
#include "queries/hamiltonian.h"
#include "queries/ladder.h"

namespace hypo {
namespace {

using bench::Kind;

void BM_LadderByStrata(benchmark::State& state) {
  Kind kind = static_cast<Kind>(state.range(0));
  int k = static_cast<int>(state.range(1));
  ProgramFixture fixture = MakeStrataLadderFixture(k);
  Query query =
      bench::MustParseQuery(fixture, "a" + std::to_string(k));
  bench::ProveOnce(state, kind, fixture, query,
                   /*expected=*/k % 2 == 1 ? 1 : 0);
  state.SetLabel(std::string(bench::KindName(kind)) +
                 " k=" + std::to_string(k));
}
BENCHMARK(BM_LadderByStrata)
    ->ArgsProduct({{0, 1}, {1, 2, 4, 8, 12, 16}});

void BM_OneVsTwoStrata(benchmark::State& state) {
  // Same database, same base rules; the second stratum (Example 8's
  // `no <- ~yes.`) forces the complete exploration of stratum 1.
  bool two_strata = state.range(0) == 1;
  Graph graph = MakeDisconnectedCliques(6);  // A no-instance.
  ProgramFixture fixture = MakeHamiltonianFixture(graph, two_strata);
  Query query =
      bench::MustParseQuery(fixture, two_strata ? "no" : "yes");
  bench::ProveOnce(state, Kind::kStratified, fixture, query,
                   /*expected=*/two_strata ? 1 : 0);
  state.SetLabel(two_strata ? "two strata (no <- ~yes)" : "one stratum");
}
BENCHMARK(BM_OneVsTwoStrata)->Arg(0)->Arg(1);

}  // namespace
}  // namespace hypo

BENCHMARK_MAIN();
