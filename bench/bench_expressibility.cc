// E9 — Theorem 2 / Lemma 2 / Corollary 2: the expressibility pipeline.
//
// Paper claim: any generic query with a Σ_k^P graph is expressible as a
// constant-free rulebase with k strata, with no order assumed on the
// domain.
//
// Measured: PARITY (the classic order-free non-Datalog query) compiled by
// the Lemma 2 construction and evaluated on unordered databases of
// growing domain size; the Corollary 2 output query on top. Answers are
// verified against direct evaluation inside the loop. Yes-instances stop
// at the first asserted order; no-instances exhaust all n! orders, so
// expect the even/odd split in cost.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "encode/generic_query.h"
#include "tm/machines_library.h"

namespace hypo {
namespace {

void BM_ParityPipeline(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  GenericQuerySpec spec;
  spec.machines = {MakeParityMachine(/*accept_even=*/true)};
  spec.schema = {{"a", 1}};
  auto symbols = std::make_shared<SymbolTable>();
  auto rules = BuildYesNoQueryRules(spec, symbols);
  HYPO_CHECK(rules.ok()) << rules.status();
  HYPO_CHECK(ValidateGenericQueryGeometry(spec, n).ok());

  Database db(symbols);
  for (int i = 1; i <= n; ++i) {
    HYPO_CHECK(db.Insert("a", {"e" + std::to_string(i)}).ok());
  }
  auto query = ParseQuery("yes", symbols.get());
  HYPO_CHECK(query.ok());

  int64_t goals = 0;
  for (auto _ : state) {
    TabledEngine engine(&*rules, &db);
    auto got = engine.ProveQuery(*query);
    HYPO_CHECK(got.ok()) << got.status();
    HYPO_CHECK(*got == (n % 2 == 0)) << "pipeline answer wrong";
    benchmark::DoNotOptimize(*got);
    goals = engine.stats().goals_expanded;
  }
  state.counters["goals"] = static_cast<double>(goals);
  state.counters["rules"] = rules->num_rules();
  state.SetLabel("parity domain n=" + std::to_string(n) +
                 (n % 2 == 0 ? " (yes)" : " (no)"));
}
BENCHMARK(BM_ParityPipeline)->Arg(2)->Arg(3)->Arg(4);

void BM_Corollary2OutputQuery(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  GenericQuerySpec spec;
  spec.machines = {MakeParityMachine(true)};
  spec.schema = {{"a", 1}};
  spec.counter_arity = 3;
  auto symbols = std::make_shared<SymbolTable>();
  auto rules = BuildOutputQueryRules(spec, /*output_arity=*/1, symbols);
  HYPO_CHECK(rules.ok()) << rules.status();

  Database db(symbols);
  for (int i = 1; i <= n; ++i) {
    HYPO_CHECK(db.Insert("a", {"e" + std::to_string(i)}).ok());
  }
  auto query = ParseQuery("out(X)", symbols.get());
  HYPO_CHECK(query.ok());

  size_t expected = (1 + n) % 2 == 0 ? static_cast<size_t>(n) : 0;
  for (auto _ : state) {
    TabledEngine engine(&*rules, &db);
    auto answers = engine.Answers(*query);
    HYPO_CHECK(answers.ok()) << answers.status();
    HYPO_CHECK(answers->size() == expected);
    benchmark::DoNotOptimize(answers->size());
  }
  state.SetLabel("out/1 over domain n=" + std::to_string(n));
}
BENCHMARK(BM_Corollary2OutputQuery)->Arg(2)->Arg(3);

}  // namespace
}  // namespace hypo

BENCHMARK_MAIN();
