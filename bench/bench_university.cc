// E1 — §2 Examples 1-3: the university-policy rulebase.
//
// Paper claim: hypothetical queries ("if Tony took cs452...") and rules
// built from them ("within one course of a degree") are evaluable; the
// Example 3 rulebase needs the general system (it is not linearly
// stratifiable — within1/degree recurse non-linearly AND hypothetically).
//
// Measured: query latency on the general engines; Example 1/2 additionally
// on the stratified prover over the linear fragment.

#include "bench/bench_util.h"
#include "queries/university.h"

namespace hypo {
namespace {

using bench::Kind;

void BM_Example1_GroundHypothetical(benchmark::State& state) {
  Kind kind = static_cast<Kind>(state.range(0));
  ProgramFixture fixture = MakeUniversityFixture(/*include_example3=*/false);
  Query query =
      bench::MustParseQuery(fixture, "grad(tony)[add: take(tony, cs452)]");
  bench::ProveOnce(state, kind, fixture, query, /*expected=*/1);
  state.SetLabel(bench::KindName(kind));
}
BENCHMARK(BM_Example1_GroundHypothetical)->Arg(0)->Arg(1)->Arg(2);

void BM_Example2_OneMoreCourse(benchmark::State& state) {
  Kind kind = static_cast<Kind>(state.range(0));
  ProgramFixture fixture = MakeUniversityFixture(/*include_example3=*/false);
  Query query = bench::MustParseQuery(fixture, "grad(S)[add: take(S, C)]");
  for (auto _ : state) {
    auto engine = bench::MakeEngine(kind, &fixture.rules, &fixture.db);
    auto answers = engine->Answers(query);
    HYPO_CHECK(answers.ok()) << answers.status();
    HYPO_CHECK(answers->size() == 2) << "tony and mary";
    benchmark::DoNotOptimize(answers->size());
  }
  state.SetLabel(bench::KindName(kind));
}
BENCHMARK(BM_Example2_OneMoreCourse)->Arg(0)->Arg(1)->Arg(2);

void BM_Example3_DualDegree(benchmark::State& state) {
  // Only the goal-directed general engine: not linearly stratifiable and
  // too hypothetical-dense for the eager engine (see DESIGN.md).
  ProgramFixture fixture = MakeUniversityFixture(/*include_example3=*/true);
  Query query = bench::MustParseQuery(fixture, "degree(sue, mathphys)");
  bench::ProveOnce(state, Kind::kTabled, fixture, query, /*expected=*/1);
  state.SetLabel("tabled (general system only)");
}
BENCHMARK(BM_Example3_DualDegree);

}  // namespace
}  // namespace hypo

BENCHMARK_MAIN();
