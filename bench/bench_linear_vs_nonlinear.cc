// E11 — §1/§4: linearity is what drops the complexity from PSPACE to NP.
//
// Paper claim: rules of form (2) — several recursive hypothetical
// premises — drive PSPACE-hardness; restricting recursion to one premise
// (linearity) brings each stratum down to NP.
//
// Measured: a linear add-chain (one recursive premise per rule, proof is
// a single path of length n) against its non-linear sibling (two
// recursive hypothetical premises per rule, an AND-tree of 2^n subgoals
// over pairwise-distinct database states). Both run on the general
// tabled engine; the observed cost curve is the paper's linearity gap.

#include <benchmark/benchmark.h>

#include <string>

#include "ast/rule_builder.h"
#include "bench/bench_util.h"

namespace hypo {
namespace {

/// depth-indexed rules  a<i> <- a<i+1>[add: m<i>_0] (, a<i+1>[add: m<i>_1])
/// with a<n+1> <- base. `branches` = 1 builds the linear chain, 2 the
/// non-linear AND-tree of form (2).
ProgramFixture MakeRecursionTower(int n, int branches) {
  ProgramFixture fixture;
  SymbolTable* symbols = fixture.symbols.get();
  auto add = [&fixture](RuleBuilder&& b) {
    auto rule = std::move(b).Build();
    HYPO_CHECK(rule.ok()) << rule.status();
    fixture.rules.AddRule(std::move(rule).value());
  };
  auto a_name = [](int i) { return "a" + std::to_string(i); };
  for (int i = 1; i <= n; ++i) {
    RuleBuilder b(symbols);
    b.Head(b.A(a_name(i), {}));
    for (int br = 0; br < branches; ++br) {
      b.Hypothetical(
          b.A(a_name(i + 1), {}),
          {b.A("m", {b.C("k" + std::to_string(i) + "_" +
                         std::to_string(br))})});
    }
    add(std::move(b));
  }
  RuleBuilder b(symbols);
  b.Head(b.A(a_name(n + 1), {})).Positive(b.A("base", {}));
  add(std::move(b));
  HYPO_CHECK(fixture.db.Insert("base", {}).ok());
  return fixture;
}

void BM_RecursionTower(benchmark::State& state) {
  int branches = static_cast<int>(state.range(0));
  int n = static_cast<int>(state.range(1));
  ProgramFixture fixture = MakeRecursionTower(n, branches);
  Query query = bench::MustParseQuery(fixture, "a1");
  bench::ProveOnce(state, bench::Kind::kTabled, fixture, query,
                   /*expected=*/1);
  state.SetLabel(std::string(branches == 1 ? "linear" : "non-linear") +
                 " n=" + std::to_string(n));
}
BENCHMARK(BM_RecursionTower)
    ->ArgsProduct({{1, 2}, {2, 4, 6, 8, 10, 12}});

}  // namespace
}  // namespace hypo

BENCHMARK_MAIN();
