// E4 — Examples 7-8: Hamiltonian path, the paper's NP-hardness witness.
//
// Paper claim: "the ability to record facts ... accounts for its
// NP-hardness"; one stratum decides Hamiltonian path, and Example 8's
// single extra rule (`no <- ~yes.`) makes the rulebase NP- and
// coNP-hard (two strata).
//
// Measured: rulebase evaluation vs a direct bitmask-backtracking
// baseline across graph families and sizes. Expected shape: both grow
// exponentially on hard instances; the baseline wins by a constant-ish
// factor (no logic overhead); yes-instances are much cheaper than
// no-instances for both (first-path early exit vs exhaustion).

#include "bench/bench_util.h"
#include "queries/hamiltonian.h"

namespace hypo {
namespace {

using bench::Kind;

Graph GraphFor(int family, int n, bool* expected) {
  switch (family) {
    case 0: {
      *expected = true;
      return MakeCycleGraph(n);
    }
    case 1: {
      *expected = n < 4;  // Two cliques are traversable only when tiny.
      return MakeDisconnectedCliques(n);
    }
    default: {
      Random rng(1234 + n);
      Graph g = MakeRandomGraph(n, 0.35, &rng);
      *expected = HamiltonianPathExists(g);
      return g;
    }
  }
}

const char* FamilyName(int family) {
  switch (family) {
    case 0: return "cycle";
    case 1: return "cliques";
    default: return "random";
  }
}

void BM_HamiltonianRulebase(benchmark::State& state) {
  Kind kind = static_cast<Kind>(state.range(0));
  int family = static_cast<int>(state.range(1));
  int n = static_cast<int>(state.range(2));
  bool expected = false;
  Graph graph = GraphFor(family, n, &expected);
  ProgramFixture fixture =
      MakeHamiltonianFixture(graph, /*with_no_rule=*/false);
  Query query = bench::MustParseQuery(fixture, "yes");
  bench::ProveOnce(state, kind, fixture, query, expected ? 1 : 0);
  state.SetLabel(std::string(bench::KindName(kind)) + " " +
                 FamilyName(family) + " n=" + std::to_string(n) +
                 (expected ? " (yes)" : " (no)"));
}
BENCHMARK(BM_HamiltonianRulebase)
    ->ArgsProduct({{0, 1}, {0, 1, 2}, {4, 6, 8}});

void BM_HamiltonianBaseline(benchmark::State& state) {
  int family = static_cast<int>(state.range(0));
  int n = static_cast<int>(state.range(1));
  bool expected = false;
  Graph graph = GraphFor(family, n, &expected);
  for (auto _ : state) {
    bool got = HamiltonianPathExists(graph);
    HYPO_CHECK(got == expected);
    benchmark::DoNotOptimize(got);
  }
  state.SetLabel(std::string("baseline ") + FamilyName(family) +
                 " n=" + std::to_string(n) + (expected ? " (yes)" : " (no)"));
}
BENCHMARK(BM_HamiltonianBaseline)->ArgsProduct({{0, 1, 2}, {4, 6, 8}});

void BM_HamiltonianComplement(benchmark::State& state) {
  // Example 8: deciding `no` requires exhausting the search (coNP side).
  int n = static_cast<int>(state.range(0));
  Graph graph = MakeDisconnectedCliques(n);
  ProgramFixture fixture =
      MakeHamiltonianFixture(graph, /*with_no_rule=*/true);
  Query query = bench::MustParseQuery(fixture, "no");
  bench::ProveOnce(state, Kind::kStratified, fixture, query,
                   /*expected=*/n >= 4 ? 1 : 0);
  state.SetLabel("stratified no-instance n=" + std::to_string(n));
}
BENCHMARK(BM_HamiltonianComplement)->Arg(4)->Arg(6)->Arg(8);

}  // namespace
}  // namespace hypo

BENCHMARK_MAIN();
