// E7 — §5.1: the lower-bound machine encodings, executed.
//
// Paper claim: a cascade of k NP oracle machines is encoded as a k-strata
// rulebase with R(L), DB(s̄) ⊢ accept iff the machine accepts s̄.
//
// Measured: (a) the encoded rulebase answers exactly like the direct
// simulator across machines/inputs; (b) evaluation cost vs the counter
// size N (the paper's n^l) and vs cascade depth k. The logical evaluation
// pays for frame-axiom models per machine step, so expect polynomial
// growth in N and a jump per oracle level; the raw simulator is orders
// of magnitude cheaper — that gap is the cost of logic, not an asymptotic
// disagreement.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "encode/tm_encoder.h"
#include "tm/machines_library.h"
#include "tm/simulator.h"

namespace hypo {
namespace {

std::vector<int> ParityInput(int ones, int zeros) {
  std::vector<int> input;
  for (int i = 0; i < ones; ++i) input.push_back(kSym1);
  for (int i = 0; i < zeros; ++i) input.push_back(kSym0);
  return input;
}

void BM_EncodedParityByCounterSize(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));  // Counter size N.
  // Input of length n-2: the machine needs one tick per digit plus the
  // accepting blank step, fitting exactly into the N-tick clock.
  std::vector<int> input = ParityInput(2, n - 4);
  auto encoding =
      EncodeCascade({MakeParityMachine(true)}, input, n);
  HYPO_CHECK(encoding.ok()) << encoding.status();
  Query query = bench::MustParseQuery(encoding->program, "accept");
  bench::ProveOnce(state, bench::Kind::kStratified, encoding->program,
                   query, /*expected=*/1);
  state.SetLabel("encoded parity N=" + std::to_string(n));
}
BENCHMARK(BM_EncodedParityByCounterSize)->Arg(6)->Arg(9)->Arg(12)->Arg(16);

void BM_SimulatorParityBaseline(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<int> input = ParityInput(2, n - 4);
  for (auto _ : state) {
    CascadeSimulator sim({MakeParityMachine(true)}, n, n);
    auto got = sim.Accepts(input);
    HYPO_CHECK(got.ok() && *got);
    benchmark::DoNotOptimize(*got);
  }
  state.SetLabel("simulator N=" + std::to_string(n));
}
BENCHMARK(BM_SimulatorParityBaseline)->Arg(6)->Arg(12)->Arg(16);

void BM_EncodedCascadeByDepth(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  std::vector<MachineSpec> machines;
  if (k >= 3) machines.push_back(MakeExpectNoMachine());
  if (k >= 2) machines.push_back(MakeAskOracleMachine(true));
  machines.push_back(MakeFirstCellIsOneMachine());
  auto encoding = EncodeCascade(machines, {kSym1}, 5);
  HYPO_CHECK(encoding.ok()) << encoding.status();
  CascadeSimulator sim(machines, 5, 5);
  auto expected = sim.Accepts({kSym1});
  HYPO_CHECK(expected.ok());
  Query query = bench::MustParseQuery(encoding->program, "accept");
  bench::ProveOnce(state, bench::Kind::kStratified, encoding->program,
                   query, *expected ? 1 : 0);
  state.SetLabel("cascade depth k=" + std::to_string(k));
}
BENCHMARK(BM_EncodedCascadeByDepth)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace hypo

BENCHMARK_MAIN();
