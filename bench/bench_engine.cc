// Ablation — the §5.2.2 bottom-up machinery: naive vs rule-level
// filtering vs tuple-level delta semi-naive fixpoint evaluation.
//
// DESIGN.md calls out the Δ-model evaluation strategy as a design choice:
// PROVE_Δ re-applies rules to a fixpoint. `EvalStrategy::kRuleFilter`
// skips rules none of whose body predicates changed in the previous
// round but still rejoins full relations; `kDeltaSeminaive` additionally
// restricts one positive premise per rule version to the tuples derived
// in the previous round (per-round delta relations + generalized hash
// indexes), which turns O(rounds × full-join) chains into O(delta-join).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "encode/tm_encoder.h"
#include "engine/memo_board.h"
#include "server/journal.h"
#include "server/query_server.h"
#include "queries/chains.h"
#include "queries/graphs.h"
#include "tm/machines_library.h"

namespace hypo {
namespace {

/// Transitive closure over a path graph: the classic fixpoint workload.
ProgramFixture MakeTransitiveClosure(int n) {
  ProgramFixture fixture;
  auto rules = ParseRuleBase(
      "t(X, Y) <- edge(X, Y).\n"
      "t(X, Y) <- t(X, Z), edge(Z, Y).\n"
      "connected <- t(X, Y), goal(X, Y).\n",
      fixture.symbols);
  HYPO_CHECK(rules.ok()) << rules.status();
  fixture.rules = std::move(rules).value();
  GraphToDatabase(MakePathGraph(n), &fixture.db);
  HYPO_CHECK(
      fixture.db.Insert("goal", {"v0", "v" + std::to_string(n - 1)}).ok());
  return fixture;
}

const char* StrategyName(EvalStrategy strategy) {
  switch (strategy) {
    case EvalStrategy::kNaive: return "naive";
    case EvalStrategy::kRuleFilter: return "rule-filter";
    case EvalStrategy::kDeltaSeminaive: return "delta";
  }
  return "?";
}

void BM_TransitiveClosureFixpoint(benchmark::State& state) {
  EvalStrategy strategy = static_cast<EvalStrategy>(state.range(0));
  int n = static_cast<int>(state.range(1));
  ProgramFixture fixture = MakeTransitiveClosure(n);
  EngineOptions options;
  options.eval_strategy = strategy;
  Query query = bench::MustParseQuery(fixture, "connected");
  int64_t rounds = 0;
  int64_t probes = 0;
  for (auto _ : state) {
    BottomUpEngine engine(&fixture.rules, &fixture.db, options);
    auto got = engine.ProveQuery(query);
    HYPO_CHECK(got.ok() && *got);
    benchmark::DoNotOptimize(*got);
    rounds = engine.stats().fixpoint_rounds;
    probes = engine.stats().join_probes;
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["join_probes"] = static_cast<double>(probes);
  state.SetLabel(std::string(StrategyName(strategy)) +
                 " path n=" + std::to_string(n));
}
BENCHMARK(BM_TransitiveClosureFixpoint)
    ->ArgsProduct({{0, 1, 2}, {8, 16, 32, 64}});

/// A linear recursion over a long chain: each round derives exactly one
/// new fact, the worst case for whole-relation rejoining and the best
/// case for the delta rewrite.
void BM_ChainReachFixpoint(benchmark::State& state) {
  EvalStrategy strategy = static_cast<EvalStrategy>(state.range(0));
  int n = static_cast<int>(state.range(1));
  ProgramFixture fixture;
  auto rules = ParseRuleBase(
      "reach(X) <- start(X).\n"
      "reach(Y) <- reach(X), edge(X, Y).\n"
      "done <- reach(X), goal(X).\n",
      fixture.symbols);
  HYPO_CHECK(rules.ok()) << rules.status();
  fixture.rules = std::move(rules).value();
  GraphToDatabase(MakePathGraph(n), &fixture.db);
  HYPO_CHECK(fixture.db.Insert("start", {"v0"}).ok());
  HYPO_CHECK(
      fixture.db.Insert("goal", {"v" + std::to_string(n - 1)}).ok());
  EngineOptions options;
  options.eval_strategy = strategy;
  Query query = bench::MustParseQuery(fixture, "done");
  int64_t probes = 0;
  for (auto _ : state) {
    BottomUpEngine engine(&fixture.rules, &fixture.db, options);
    auto got = engine.ProveQuery(query);
    HYPO_CHECK(got.ok() && *got);
    benchmark::DoNotOptimize(*got);
    probes = engine.stats().join_probes;
  }
  state.counters["join_probes"] = static_cast<double>(probes);
  state.SetLabel(std::string(StrategyName(strategy)) +
                 " chain n=" + std::to_string(n));
}
BENCHMARK(BM_ChainReachFixpoint)
    ->ArgsProduct({{0, 1, 2}, {64, 256, 1024}});

/// A forest of `k` disjoint chains of length `len`: node `c<i>_<j>` is
/// the j-th node of chain i. Eager transitive closure must close every
/// chain (k * len^2 / 2 facts); a query bound to chain 0's source only
/// demands that one chain.
ProgramFixture MakeChainForest(int k, int len, int gap = -1) {
  ProgramFixture fixture;
  auto rules = ParseRuleBase(
      "t(X, Y) <- edge(X, Y).\n"
      "t(X, Y) <- t(X, Z), edge(Z, Y).\n",
      fixture.symbols);
  HYPO_CHECK(rules.ok()) << rules.status();
  fixture.rules = std::move(rules).value();
  for (int i = 0; i < k; ++i) {
    const std::string c = "c" + std::to_string(i) + "_";
    for (int j = 0; j + 1 < len; ++j) {
      if (i == 0 && j == gap) continue;  // Chain 0 may have a gap.
      HYPO_CHECK(fixture.db
                     .Insert("edge", {c + std::to_string(j),
                                      c + std::to_string(j + 1)})
                     .ok());
    }
  }
  return fixture;
}

/// Demand ablation (EngineOptions::demand): a ground transitive-closure
/// query over a chain forest. Eager evaluation closes all k chains; the
/// magic-set rewrite touches only the demanded source's chain, so the
/// gap scales with k.
void BM_DemandBoundClosure(benchmark::State& state) {
  bool demand = state.range(0) != 0;
  int k = static_cast<int>(state.range(1));
  const int len = 64;
  ProgramFixture fixture = MakeChainForest(k, len);
  EngineOptions options;
  options.demand = demand;
  Query query = bench::MustParseQuery(
      fixture, "t(c0_0, c0_" + std::to_string(len - 1) + ")");
  int64_t facts = 0;
  int64_t magic = 0;
  for (auto _ : state) {
    BottomUpEngine engine(&fixture.rules, &fixture.db, options);
    auto got = engine.ProveQuery(query);
    HYPO_CHECK(got.ok() && *got) << got.status();
    benchmark::DoNotOptimize(*got);
    facts = engine.stats().facts_derived;
    magic = engine.stats().magic_facts;
  }
  state.counters["facts_derived"] = static_cast<double>(facts);
  state.counters["magic_facts"] = static_cast<double>(magic);
  state.SetLabel(std::string(demand ? "demand" : "eager") +
                 " bound closure forest k=" + std::to_string(k));
}
BENCHMARK(BM_DemandBoundClosure)->ArgsProduct({{0, 1}, {4, 16, 64}});

/// Demand ablation on a ground hypothetical query: chain 0 of the
/// forest has a gap in the middle and the query asks whether one added
/// edge bridges it. The child state `DB + edge` is demand-seeded with
/// the queried atom, so only the source's chain of the hypothetical
/// world is computed — eager evaluation closes all k chains twice (base
/// state and child state).
void BM_DemandHypotheticalBridge(benchmark::State& state) {
  bool demand = state.range(0) != 0;
  int k = static_cast<int>(state.range(1));
  const int len = 64;
  const int gap = len / 2;
  ProgramFixture fixture = MakeChainForest(k, len, gap);
  EngineOptions options;
  options.demand = demand;
  Query query = bench::MustParseQuery(
      fixture, "t(c0_0, c0_" + std::to_string(len - 1) + ")[add: edge(c0_" +
                   std::to_string(gap) + ", c0_" + std::to_string(gap + 1) +
                   ")]");
  int64_t facts = 0;
  int64_t magic = 0;
  int64_t states = 0;
  for (auto _ : state) {
    BottomUpEngine engine(&fixture.rules, &fixture.db, options);
    auto got = engine.ProveQuery(query);
    HYPO_CHECK(got.ok() && *got) << got.status();
    benchmark::DoNotOptimize(*got);
    facts = engine.stats().facts_derived;
    magic = engine.stats().magic_facts;
    states = engine.num_states();
  }
  state.counters["facts_derived"] = static_cast<double>(facts);
  state.counters["magic_facts"] = static_cast<double>(magic);
  state.counters["db_states"] = static_cast<double>(states);
  state.SetLabel(std::string(demand ? "demand" : "eager") +
                 " hypothetical bridge forest k=" + std::to_string(k));
}
BENCHMARK(BM_DemandHypotheticalBridge)->ArgsProduct({{0, 1}, {4, 16, 64}});

/// Thread scaling of the partitioned fixpoint on an embarrassingly wide
/// workload: eagerly closing a forest of independent chains. Each round's
/// instantiations partition across shards by tuple hash, so the chains
/// spread evenly over the workers; the answer (and facts_derived) is
/// identical at every thread count.
void BM_ParallelFixpoint(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  const int k = 32;
  const int len = 32;
  ProgramFixture fixture = MakeChainForest(k, len);
  EngineOptions options;
  options.num_threads = threads;
  Query query = bench::MustParseQuery(
      fixture, "t(c0_0, c0_" + std::to_string(len - 1) + ")");
  int64_t facts = 0;
  int64_t rounds = 0;
  int64_t stolen = 0;
  int64_t barrier = 0;
  for (auto _ : state) {
    BottomUpEngine engine(&fixture.rules, &fixture.db, options);
    auto got = engine.ProveQuery(query);
    HYPO_CHECK(got.ok() && *got) << got.status();
    benchmark::DoNotOptimize(*got);
    facts = engine.stats().facts_derived;
    rounds = engine.stats().parallel_rounds;
    stolen = engine.stats().tasks_stolen;
    barrier = engine.stats().barrier_micros;
  }
  state.counters["facts_derived"] = static_cast<double>(facts);
  state.counters["parallel_rounds"] = static_cast<double>(rounds);
  state.counters["tasks_stolen"] = static_cast<double>(stolen);
  state.counters["barrier_micros"] = static_cast<double>(barrier);
  state.SetLabel("parallel fixpoint forest k=" + std::to_string(k) +
                 " threads=" + std::to_string(threads));
}
BENCHMARK(BM_ParallelFixpoint)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Concurrent hypothetical-state exploration: every chain in the forest
/// has a gap, and one rule asks per chain whether bridging its gap
/// reconnects the endpoints. Each ground hypothetical test materializes a
/// distinct child state — and each child re-runs the rule for the other
/// chains, so the workload explores the full 2^k lattice of bridge
/// subsets. Under parallel rounds, different shards reach different
/// chains' tests, so independent state models are computed concurrently
/// through the sharded state cache.
void BM_ParallelHypoStates(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  const int k = 8;
  const int len = 24;
  const int gap = len / 2;
  ProgramFixture fixture;
  auto rules = ParseRuleBase(
      "t(X, Y) <- edge(X, Y).\n"
      "t(X, Y) <- t(X, Z), edge(Z, Y).\n"
      "fixed(I) <- ends(I, S, E), gap(I, U, V), t(S, E)[add: edge(U, V)].\n",
      fixture.symbols);
  HYPO_CHECK(rules.ok()) << rules.status();
  fixture.rules = std::move(rules).value();
  for (int i = 0; i < k; ++i) {
    const std::string c = "c" + std::to_string(i) + "_";
    const std::string chain = "chain" + std::to_string(i);
    for (int j = 0; j + 1 < len; ++j) {
      if (j == gap) continue;
      HYPO_CHECK(fixture.db
                     .Insert("edge", {c + std::to_string(j),
                                      c + std::to_string(j + 1)})
                     .ok());
    }
    HYPO_CHECK(fixture.db
                   .Insert("ends", {chain, c + "0",
                                    c + std::to_string(len - 1)})
                   .ok());
    HYPO_CHECK(fixture.db
                   .Insert("gap", {chain, c + std::to_string(gap),
                                   c + std::to_string(gap + 1)})
                   .ok());
  }
  EngineOptions options;
  options.num_threads = threads;
  Query query = bench::MustParseQuery(fixture, "fixed(I)");
  int64_t states = 0;
  int64_t memo_hits = 0;
  for (auto _ : state) {
    BottomUpEngine engine(&fixture.rules, &fixture.db, options);
    auto got = engine.Answers(query);
    HYPO_CHECK(got.ok()) << got.status();
    HYPO_CHECK(got->size() == static_cast<size_t>(k));
    benchmark::DoNotOptimize(got->size());
    states = engine.num_states();
    memo_hits = engine.stats().memo_hits;
  }
  state.counters["db_states"] = static_cast<double>(states);
  state.counters["memo_hits"] = static_cast<double>(memo_hits);
  state.SetLabel("parallel hypo states k=" + std::to_string(k) +
                 " threads=" + std::to_string(threads));
}
BENCHMARK(BM_ParallelHypoStates)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Incremental base-fact maintenance (the server's epoch turn) vs full
/// rebuild: retract one mid-chain edge of a warm chain-forest closure,
/// repair, query, re-insert it, repair, query. The retraction severs one
/// chain's closure (DRed overdeletes the crossing pairs, everything else
/// keeps support); the rebuild baseline re-initializes the engine and
/// recomputes all k chains from scratch on the next query.
void BM_IncrementalRetract(benchmark::State& state) {
  bool incremental = state.range(0) != 0;
  int k = static_cast<int>(state.range(1));
  const int len = 32;
  ProgramFixture fixture = MakeChainForest(k, len);
  EngineOptions options;
  BottomUpEngine engine(&fixture.rules, &fixture.db, options);
  HYPO_CHECK(engine.Init().ok());
  Query query = bench::MustParseQuery(
      fixture, "t(c0_0, c0_" + std::to_string(len - 1) + ")");
  auto warm = engine.ProveQuery(query);
  HYPO_CHECK(warm.ok() && *warm) << warm.status();

  // A middle edge of chain 1: its endpoints stay in the domain via their
  // neighboring edges, so the repair path (not the changed-domain
  // rebuild fallback) is what gets measured.
  auto toggled = ParseFact("edge(c1_15, c1_16)", fixture.symbols.get());
  HYPO_CHECK(toggled.ok()) << toggled.status();

  int64_t overdeleted = 0;
  int64_t rederived = 0;
  int64_t repaired = 0;
  for (auto _ : state) {
    HYPO_CHECK(fixture.db.Retract(*toggled));
    BaseDelta retract;
    retract.retracts.push_back(*toggled);
    Status s = incremental ? engine.ApplyBaseDelta(retract) : engine.Init();
    HYPO_CHECK(s.ok()) << s;
    auto without = engine.ProveQuery(query);
    HYPO_CHECK(without.ok() && *without) << without.status();

    HYPO_CHECK(fixture.db.Insert(*toggled));
    BaseDelta insert;
    insert.inserts.push_back(*toggled);
    s = incremental ? engine.ApplyBaseDelta(insert) : engine.Init();
    HYPO_CHECK(s.ok()) << s;
    auto with = engine.ProveQuery(query);
    HYPO_CHECK(with.ok() && *with) << with.status();

    overdeleted = engine.stats().facts_overdeleted;
    rederived = engine.stats().facts_rederived;
    repaired = engine.stats().strata_repaired;
  }
  state.counters["facts_overdeleted"] = static_cast<double>(overdeleted);
  state.counters["facts_rederived"] = static_cast<double>(rederived);
  state.counters["strata_repaired"] = static_cast<double>(repaired);
  state.SetLabel(std::string(incremental ? "incremental" : "rebuild") +
                 " retract/insert forest k=" + std::to_string(k));
}
BENCHMARK(BM_IncrementalRetract)->ArgsProduct({{0, 1}, {4, 16, 64}});

void BM_FrameAxiomModels(benchmark::State& state) {
  // The §5.1 frame axioms stress the Δ-model fixpoint inside the
  // stratified prover: one Δ model per machine step. The prover supports
  // naive vs rule-filter (it treats kDeltaSeminaive as kRuleFilter).
  EvalStrategy strategy = static_cast<EvalStrategy>(state.range(0));
  int n = static_cast<int>(state.range(1));
  std::vector<int> input;
  for (int i = 0; i < n - 4; ++i) input.push_back(i % 2 == 0 ? kSym1 : kSym0);
  input.push_back(kSym1);  // Keep the count of '1's even overall? No: any.
  auto encoding = EncodeCascade({MakeContainsOneMachine()}, input, n);
  HYPO_CHECK(encoding.ok()) << encoding.status();
  EngineOptions options;
  options.eval_strategy = strategy;
  Query query = bench::MustParseQuery(encoding->program, "accept");
  for (auto _ : state) {
    StratifiedProver prover(&encoding->program.rules, &encoding->program.db,
                            options);
    auto got = prover.ProveQuery(query);
    HYPO_CHECK(got.ok() && *got);
    benchmark::DoNotOptimize(*got);
  }
  state.SetLabel(std::string(StrategyName(strategy)) +
                 " frame axioms N=" + std::to_string(n));
}
BENCHMARK(BM_FrameAxiomModels)->ArgsProduct({{0, 1}, {8, 12}});

/// Overlay-heavy tabled workloads: goal-directed proofs whose memo keys
/// live under deep hypothetical contexts. Every ProveGoal call builds a
/// memo key for the current overlay state, so these isolate the cost of
/// context keying (formerly an O(|overlay| log |overlay|) canonical-key
/// rebuild per goal, now an O(1) interned id).
void BM_OverlayHeavyOrderLoop(benchmark::State& state) {
  bench::Kind kind = static_cast<bench::Kind>(state.range(0));
  int n = static_cast<int>(state.range(1));
  ProgramFixture fixture = MakeOrderLoopFixture(n);
  Query query = bench::MustParseQuery(fixture, "a");
  bench::ProveOnce(state, kind, fixture, query, /*expected=*/1);
  state.SetLabel(std::string(bench::KindName(kind)) +
                 " overlay-heavy order loop n=" + std::to_string(n));
}
BENCHMARK(BM_OverlayHeavyOrderLoop)
    ->ArgsProduct({{0, 1}, {32, 64, 96}});

void BM_OverlayHeavyCascade(benchmark::State& state) {
  bench::Kind kind = static_cast<bench::Kind>(state.range(0));
  int n = static_cast<int>(state.range(1));
  ProgramFixture fixture = MakeAddCascadeFixture(n, /*db_prefix=*/0);
  Query query = bench::MustParseQuery(fixture, "a1");
  bench::ProveOnce(state, kind, fixture, query, /*expected=*/1);
  state.SetLabel(std::string(bench::KindName(kind)) +
                 " overlay-heavy cascade n=" + std::to_string(n));
}
BENCHMARK(BM_OverlayHeavyCascade)
    ->ArgsProduct({{0, 1}, {32, 64, 96}});

/// The server's cross-query warm path: at every epoch turn the first
/// pooled engine repairs and republishes the base model on the shared
/// MemoBoard; each sibling then skips its own repair and adopts the
/// published snapshot at its next query. Timed region = what ONE sibling
/// pays per epoch turn (ApplyBaseDelta + the follow-up query):
///   /0 cold — board-less sibling, pays its own DRed repair;
///   /1 warm — board-attached sibling, pays a state drop + model Clone.
/// The untimed setup per iteration plays the server: toggle a base fact,
/// BeginEpoch, have the repairer engine repair + republish.
void BM_CrossQueryMemoReuse(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  const int k = 4;
  const int len = 64;
  ProgramFixture fixture = MakeChainForest(k, len);
  MemoBoard board;
  int64_t epoch = 1;
  board.BeginEpoch(epoch);
  EngineOptions options;
  BottomUpEngine repairer(&fixture.rules, &fixture.db, options);
  repairer.AttachMemoBoard(&board);
  BottomUpEngine sibling(&fixture.rules, &fixture.db, options);
  if (warm) sibling.AttachMemoBoard(&board);
  HYPO_CHECK(repairer.Init().ok());
  HYPO_CHECK(sibling.Init().ok());
  Query query = bench::MustParseQuery(
      fixture, "t(c0_0, c0_" + std::to_string(len - 1) + ")");
  HYPO_CHECK(repairer.ProveQuery(query).ok());
  HYPO_CHECK(sibling.ProveQuery(query).ok());

  // A middle edge of chain 1: endpoints stay in the domain through their
  // neighbors, so every turn takes the repair path, never the
  // changed-domain rebuild.
  auto toggled = ParseFact("edge(c1_31, c1_32)", fixture.symbols.get());
  HYPO_CHECK(toggled.ok()) << toggled.status();
  bool present = true;
  for (auto _ : state) {
    state.PauseTiming();
    present = !present;
    BaseDelta delta;
    if (present) {
      HYPO_CHECK(fixture.db.Insert(*toggled));
      delta.inserts.push_back(*toggled);
    } else {
      HYPO_CHECK(fixture.db.Retract(*toggled));
      delta.retracts.push_back(*toggled);
    }
    board.BeginEpoch(++epoch);
    HYPO_CHECK(repairer.ApplyBaseDelta(delta).ok());
    state.ResumeTiming();

    Status s = sibling.ApplyBaseDelta(delta);
    HYPO_CHECK(s.ok()) << s;
    auto answer = sibling.ProveQuery(query);
    HYPO_CHECK(answer.ok() && *answer) << answer.status();
  }
  MemoBoard::Stats stats = board.snapshot_stats();
  state.counters["model_hits"] = static_cast<double>(stats.model_hits);
  state.counters["cache_hits_cross_query"] =
      static_cast<double>(sibling.stats().cache_hits_cross_query);
  state.SetLabel(std::string(warm ? "warm (board adopt)"
                                  : "cold (self-repair)") +
                 " k=" + std::to_string(k) + " len=" + std::to_string(len));
}
BENCHMARK(BM_CrossQueryMemoReuse)->Arg(0)->Arg(1);

/// Cost of the durability layer on the server's epoch-turn path: each
/// iteration is one acknowledged mutation batch (a base-fact toggle, so
/// every turn changes exactly one fact and repairs incrementally).
///   /0 — durability off (no data dir): the pre-existing epoch turn;
///   /1 — journal on, fsync=off: encode + buffered append only;
///   /2 — journal on, fsync=group: one fsync per 8 batches;
///   /3 — journal on, fsync=always: one fsync per acknowledged batch.
/// The /0 vs /1 delta is the journaling bookkeeping itself and should be
/// noise; /3 is bounded by the device's flush latency.
void BM_JournaledMutationBatch(benchmark::State& state) {
  constexpr char kProgram[] =
      "reach(X, Y) <- edge(X, Y).\n"
      "reach(X, Z) <- edge(X, Y), reach(Y, Z).\n"
      "edge(a, b).\nedge(b, c).\nedge(c, d).\n";
  const int mode = static_cast<int>(state.range(0));
  ServerOptions options;
  options.engine_name = "bottomup";
  options.pool_size = 2;
  std::string dir;
  if (mode != 0) {
    dir = (std::filesystem::temp_directory_path() /
           ("hypo_bench_journal_" + std::to_string(mode)))
              .string();
    std::filesystem::remove_all(dir);
    options.durability.data_dir = dir;
    options.durability.fsync_policy =
        mode == 1   ? Journal::FsyncPolicy::kOff
        : mode == 2 ? Journal::FsyncPolicy::kGroup
                    : Journal::FsyncPolicy::kAlways;
  }
  auto server = QueryServer::Create(kProgram, options);
  HYPO_CHECK(server.ok()) << server.status();
  bool present = false;
  for (auto _ : state) {
    auto outcome = present ? (*server)->Retract("edge(d, e)")
                           : (*server)->Insert("edge(d, e)");
    HYPO_CHECK(outcome.ok()) << outcome.status();
    present = !present;
  }
  QueryServer::Counters counters = (*server)->counters();
  state.counters["journal_appends"] =
      static_cast<double>(counters.journal_appends);
  state.counters["fsyncs"] = static_cast<double>(counters.fsyncs);
  state.SetLabel(mode == 0
                     ? "durability off"
                     : std::string("fsync=") + Journal::PolicyName(
                           options.durability.fsync_policy));
  server->reset();
  if (!dir.empty()) std::filesystem::remove_all(dir);
}
BENCHMARK(BM_JournaledMutationBatch)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace hypo

HYPO_BENCHMARK_MAIN_WITH_JSON();
