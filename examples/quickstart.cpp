// Quickstart: parse a hypothetical rulebase, load facts, and ask
// hypothetical queries — the paper's §2 university example end to end.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <iostream>
#include <memory>

#include "engine/tabled.h"
#include "parser/parser.h"

int main() {
  using namespace hypo;

  // 1. One SymbolTable shared by rules, database, and queries.
  auto symbols = std::make_shared<SymbolTable>();

  // 2. Rules in the surface syntax. `grad(S)[add: take(S, C)]` reads:
  //    "grad(S) would be inferable if take(S, C) were inserted".
  auto rules = ParseRuleBase(R"(
    grad(S) <- take(S, his101), take(S, eng201).
    grad(S) <- take(S, cs250), take(S, cs452).
    one_course_away(S) <- ~grad(S), grad(S)[add: take(S, C)].
  )", symbols);
  if (!rules.ok()) {
    std::cerr << "parse error: " << rules.status() << "\n";
    return 1;
  }

  // 3. Facts.
  Database db(symbols);
  Status s = ParseFactsInto(R"(
    take(tony, cs250).
    take(tony, his101).
    take(mary, his101).
    take(mary, eng201).
    take(bob, his101).
  )", &db);
  if (!s.ok()) {
    std::cerr << "facts error: " << s << "\n";
    return 1;
  }

  // 4. An engine over (rules, db). TabledEngine is the general-purpose
  //    choice; StratifiedProver implements the paper's PROVE_Σ/PROVE_Δ
  //    procedure for linearly stratified rulebases.
  TabledEngine engine(&*rules, &db);
  if (Status init = engine.Init(); !init.ok()) {
    std::cerr << "init error: " << init << "\n";
    return 1;
  }

  // 5. Example 1: a ground hypothetical query.
  auto q1 = ParseQuery("grad(tony)[add: take(tony, cs452)]", symbols.get());
  auto r1 = engine.ProveQuery(*q1);
  std::cout << "If tony took cs452, could he graduate?  "
            << (*r1 ? "yes" : "no") << "\n";

  // 6. Example 2: who is exactly one course away from graduating?
  auto q2 = ParseQuery("one_course_away(S)", symbols.get());
  auto answers = engine.Answers(*q2);
  std::cout << "One course away:";
  for (const Tuple& t : *answers) {
    std::cout << " " << symbols->ConstName(t[0]);
  }
  std::cout << "\n";

  // 7. Hypothetical insertions never persist.
  auto q3 = ParseQuery("grad(tony)", symbols.get());
  std::cout << "Does tony graduate without the hypothesis?  "
            << (*engine.ProveQuery(*q3) ? "yes" : "no") << "\n";
  return 0;
}
