// §6 end to end: compile a generic query (parity) into a constant-free
// hypothetical rulebase via the Lemma 2 construction — Turing machine,
// hypothetically asserted linear orders, arity-l counter, bitmap input —
// and run it on unordered databases. Also prints the §6.2.3 bitmap
// diagrams for the paper's running example.
//
// Usage: ./build/examples/expressibility [max_domain_size]

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "encode/generic_query.h"
#include "engine/tabled.h"
#include "parser/parser.h"
#include "tm/machines_library.h"

namespace {

using namespace hypo;

/// Renders the §6.2.3 diagrams: the bitmap of {P(b,a), P(b,b), Q(b)}
/// under a given linear order of {a, b}.
void PrintDiagram(const std::vector<std::string>& order) {
  std::cout << "  order " << order[0] << " < " << order[1] << ":  ";
  auto has = [](const std::string& x, const std::string& y) {
    // P = {(b,a), (b,b)}.
    return x == "b";
    (void)y;
  };
  std::string bits;
  std::string cells;
  for (const std::string& x : order) {
    for (const std::string& y : order) {
      bits += has(x, y) ? "1 " : "0 ";
      cells += "P(" + x + "," + y + ") ";
    }
  }
  for (const std::string& y : order) {
    bits += (y == "b") ? "1 " : "0 ";  // Q = {b}.
    cells += "Q(" + y + ") ";
  }
  std::cout << bits << "\n           cells: " << cells << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  int max_n = argc > 1 ? std::atoi(argv[1]) : 4;

  std::cout << "Diagrams 1-2 (§6.2.3): the same database under two "
               "orders\n";
  PrintDiagram({"a", "b"});
  PrintDiagram({"b", "a"});
  std::cout << "Re-ordering the domain permutes the bitmap exactly like "
               "renaming the constants,\nso a generic query accepts under "
               "every order or under none.\n\n";

  // Lemma 2: parity of a unary relation, decided by a one-machine
  // cascade over the bitmap, with all orders asserted hypothetically.
  GenericQuerySpec spec;
  spec.machines = {MakeParityMachine(/*accept_even=*/true)};
  spec.schema = {{"a", 1}};

  std::cout << "Compiling PARITY-EVEN into a constant-free rulebase "
               "(Lemma 2)...\n";
  auto symbols = std::make_shared<SymbolTable>();
  auto rules = BuildYesNoQueryRules(spec, symbols);
  if (!rules.ok()) {
    std::cerr << "build error: " << rules.status() << "\n";
    return 1;
  }
  std::cout << "  " << rules->num_rules() << " rules, constant-free: "
            << (rules->IsConstantFree() ? "yes" : "no") << "\n\n";

  std::cout << "n  |a|  direct  rulebase  goals\n";
  for (int n = 2; n <= max_n; ++n) {
    Database db(symbols);
    for (int i = 1; i <= n; ++i) {
      if (Status s = db.Insert("a", {"e" + std::to_string(i)}); !s.ok()) {
        std::cerr << s << "\n";
        return 1;
      }
    }
    if (Status s = ValidateGenericQueryGeometry(spec, n); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    TabledEngine engine(&*rules, &db);
    auto yes = ParseQuery("yes", symbols.get());
    auto got = engine.ProveQuery(*yes);
    if (!got.ok()) {
      std::cerr << "evaluation error: " << got.status() << "\n";
      return 1;
    }
    bool direct = (n % 2 == 0);
    std::cout << n << "  " << n << "    " << (direct ? "even" : "odd ")
              << "    " << (*got ? "even" : "odd ") << "     "
              << engine.stats().goals_expanded << "\n";
    if (*got != direct) {
      std::cerr << "MISMATCH at n=" << n << "\n";
      return 1;
    }
  }
  std::cout << "\nEvery answer matches direct evaluation, with no order "
               "on the domain.\n";
  return 0;
}
