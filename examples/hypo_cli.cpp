// hypo_cli: evaluate hypothetical-Datalog programs from the command line.
//
//   hypo_cli PROGRAM.hdl [-q QUERY]... [--engine tabled|stratified|bottomup]
//   hypo_cli PROGRAM.hdl -q "..." --engine bottomup --demand  # magic sets
//   hypo_cli PROGRAM.hdl -q "..." --engine bottomup --threads 4
//   hypo_cli PROGRAM.hdl -q "..." --timeout-ms 500 --max-memory-mb 256
//   hypo_cli PROGRAM.hdl --explain  # print the linear stratification
//   hypo_cli PROGRAM.hdl --explain-plan  # premise order + rule bytecode
//   hypo_cli PROGRAM.hdl -q "..." --executor interp  # plan-walking oracle
//   hypo_cli PROGRAM.hdl --proof -q "grad(tony)"   # print a derivation
//   hypo_cli PROGRAM.hdl            # interactive: one query per line
//
// PROGRAM.hdl mixes rules and facts (ground, bodyless statements become
// database facts). Queries use the same premise syntax, e.g.
//   grad(tony)[add: take(tony, cs452)]
//   reach(a, c)[del: link(a, b)]
//   one_away(S)
//
// Resource governance: --timeout-ms bounds each query's wall clock,
// --max-memory-mb bounds the engine's approximate memory, and SIGINT
// (ctrl-c) cancels the running query cooperatively. Exit codes: 0 ok,
// 1 evaluation/parse error, 2 usage error, 3 deadline exceeded,
// 4 resource limit exceeded, 5 cancelled.

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "base/string_util.h"
#include "engine/proof.h"
#include "engine/bottom_up.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "parser/parser.h"

namespace {

using namespace hypo;

/// Parses a positive integer flag value strictly (no trailing garbage,
/// no silent overflow — `--threads 4abc` and `--timeout-ms 999…9` are
/// usage errors, exit code 2). `max` defaults to a generous but finite
/// bound so later unit conversions (ms -> us, MB -> bytes) cannot wrap.
bool ParsePositiveFlag(const char* flag, const char* value, long* out,
                       long max = std::numeric_limits<int32_t>::max()) {
  auto parsed = ParseInt(value, 1, max);
  if (!parsed.ok()) {
    std::cerr << flag << " needs a positive integer: " << parsed.status()
              << "\n";
    return false;
  }
  *out = static_cast<long>(*parsed);
  return true;
}

/// SIGINT flips the token from the handler (Cancel() is async-signal
/// safe); the running query aborts at its next metering check.
CancellationToken* g_cancel = nullptr;

void HandleSigint(int) {
  if (g_cancel != nullptr) g_cancel->Cancel();
}

/// Documented process exit codes for governance trips (see file header).
int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      return 3;
    case StatusCode::kResourceExhausted:
      return 4;
    case StatusCode::kCancelled:
      return 5;
    default:
      return 1;
  }
}

std::unique_ptr<Engine> MakeEngineByName(const std::string& name,
                                         const RuleBase* rules,
                                         const Database* db,
                                         const EngineOptions& options) {
  if (name == "stratified") {
    return std::make_unique<StratifiedProver>(rules, db, options);
  }
  if (name == "bottomup") {
    return std::make_unique<BottomUpEngine>(rules, db, options);
  }
  return std::make_unique<TabledEngine>(rules, db, options);
}

int PrintProof(TabledEngine* engine, SymbolTable* symbols,
               const std::string& text) {
  auto fact = ParseFact(text, symbols);
  if (!fact.ok()) {
    std::cerr << "--proof needs a ground atom: " << fact.status() << "\n";
    return 1;
  }
  auto proof = engine->ExplainFact(*fact);
  if (!proof.ok()) {
    std::cerr << proof.status() << "\n";
    return ExitCodeFor(proof.status());
  }
  std::cout << ProofToString(*proof, *symbols);
  return 0;
}

int RunQuery(Engine* engine, SymbolTable* symbols, const std::string& text) {
  auto query = ParseQuery(text, symbols);
  if (!query.ok()) {
    std::cerr << "query error: " << query.status() << "\n";
    return 1;
  }
  if (query->num_vars() == 0) {
    auto r = engine->ProveQuery(*query);
    if (!r.ok()) {
      std::cerr << "evaluation error: " << r.status() << "\n";
      return ExitCodeFor(r.status());
    }
    std::cout << (*r ? "yes" : "no") << "\n";
    return 0;
  }
  auto answers = engine->Answers(*query);
  if (!answers.ok()) {
    std::cerr << "evaluation error: " << answers.status() << "\n";
    return ExitCodeFor(answers.status());
  }
  if (answers->empty()) {
    std::cout << "no answers\n";
    return 0;
  }
  for (const Tuple& tuple : *answers) {
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) std::cout << ", ";
      std::cout << query->var_names[i] << " = "
                << symbols->ConstName(tuple[i]);
    }
    std::cout << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0]
              << " PROGRAM.hdl [-q QUERY]... [--engine NAME] [--demand]"
                 " [--threads N] [--timeout-ms N] [--max-memory-mb N]"
                 " [--executor vm|interp] [--explain-plan]\n";
    return 2;
  }
  // A mistyped storage backend must fail fast, not silently evaluate on
  // the default backend; same for a mistyped HYPO_EXEC executor.
  if (Status s = Database::ValidateStorageEnv(); !s.ok()) {
    std::cerr << "storage: " << s << "\n";
    return 2;
  }
  if (Status s = ValidateExecutorEnv(); !s.ok()) {
    std::cerr << "executor: " << s << "\n";
    return 2;
  }
  std::string program_path;
  std::vector<std::string> queries;
  std::string engine_name = "tabled";
  std::string executor_name;
  bool explain = false;
  bool explain_plan = false;
  bool proof = false;
  bool demand = false;
  int threads = 1;
  long timeout_ms = 0;
  long max_memory_mb = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-q" && i + 1 < argc) {
      queries.emplace_back(argv[++i]);
    } else if (arg == "--engine" && i + 1 < argc) {
      engine_name = argv[++i];
    } else if (arg == "--demand") {
      demand = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      long value = 0;
      if (!ParsePositiveFlag("--threads", argv[++i], &value, 1024)) return 2;
      threads = static_cast<int>(value);
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      if (!ParsePositiveFlag("--timeout-ms", argv[++i], &timeout_ms)) {
        return 2;
      }
    } else if (arg == "--max-memory-mb" && i + 1 < argc) {
      if (!ParsePositiveFlag("--max-memory-mb", argv[++i], &max_memory_mb)) {
        return 2;
      }
    } else if (arg == "--executor" && i + 1 < argc) {
      executor_name = argv[++i];
      if (executor_name != "vm" && executor_name != "interp") {
        std::cerr << "--executor must be \"vm\" or \"interp\"\n";
        return 2;
      }
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--explain-plan") {
      explain_plan = true;
    } else if (arg == "--proof") {
      proof = true;
    } else if (program_path.empty()) {
      program_path = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n";
      return 2;
    }
  }

  std::ifstream in(program_path);
  if (!in) {
    std::cerr << "cannot open " << program_path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto symbols = std::make_shared<SymbolTable>();
  auto program = ParseProgram(buffer.str(), symbols);
  if (!program.ok()) {
    std::cerr << "parse error: " << program.status() << "\n";
    return 1;
  }
  std::cerr << "loaded " << program->rules.num_rules() << " rules, "
            << program->facts.size() << " facts\n";

  if (explain) {
    std::cout << ExplainStratification(program->rules);
    if (queries.empty()) return 0;
  }

  if (demand && engine_name != "bottomup") {
    std::cerr << "--demand requires --engine bottomup\n";
    return 2;
  }
  if (threads > 1 && engine_name != "bottomup") {
    std::cerr << "--threads requires --engine bottomup\n";
    return 2;
  }
  EngineOptions options;
  if (!executor_name.empty()) {
    options.executor = executor_name == "interp" ? ExecutorKind::kInterp
                                                 : ExecutorKind::kVm;
  }
  options.demand = demand;
  options.num_threads = threads;
  options.timeout_micros = timeout_ms * 1000;
  options.max_memory_bytes = max_memory_mb * 1024 * 1024;
  auto cancel = std::make_shared<CancellationToken>();
  options.cancel = cancel;
  g_cancel = cancel.get();
  std::signal(SIGINT, HandleSigint);

  auto engine = MakeEngineByName(engine_name, &program->rules,
                                 &program->facts, options);
  if (Status s = engine->Init(); !s.ok()) {
    std::cerr << "engine init (" << engine->name() << "): " << s << "\n";
    return 1;
  }

  if (explain_plan) {
    std::cout << engine->ExplainPlans();
    if (queries.empty()) return 0;
  }

  // First failure wins: a governance exit code (3/4/5) from query k must
  // not be OR-mangled by later queries' codes.
  int rc = 0;
  if (proof) {
    auto* tabled = dynamic_cast<TabledEngine*>(engine.get());
    if (tabled == nullptr) {
      std::cerr << "--proof requires --engine tabled\n";
      return 2;
    }
    for (const std::string& q : queries) {
      std::cout << "?- " << q << "\n";
      int code = PrintProof(tabled, symbols.get(), q);
      if (rc == 0) rc = code;
    }
    return rc;
  }
  if (!queries.empty()) {
    for (const std::string& q : queries) {
      std::cout << "?- " << q << "\n";
      int code = RunQuery(engine.get(), symbols.get(), q);
      if (rc == 0) rc = code;
    }
    return rc;
  }
  std::cerr << "enter queries, one per line (ctrl-d to quit)\n";
  std::string line;
  while (std::cout << "?- " && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    RunQuery(engine.get(), symbols.get(), line);
    // A ctrl-c that landed mid-query cancelled it; clear the token so
    // the session keeps accepting queries (quit with ctrl-d).
    if (cancel->cancelled()) cancel->Reset();
  }
  return 0;
}
