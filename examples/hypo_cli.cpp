// hypo_cli: evaluate hypothetical-Datalog programs from the command line.
//
//   hypo_cli PROGRAM.hdl [-q QUERY]... [--engine tabled|stratified|bottomup]
//   hypo_cli PROGRAM.hdl -q "..." --engine bottomup --demand  # magic sets
//   hypo_cli PROGRAM.hdl -q "..." --engine bottomup --threads 4
//   hypo_cli PROGRAM.hdl --explain  # print the linear stratification
//   hypo_cli PROGRAM.hdl --proof -q "grad(tony)"   # print a derivation
//   hypo_cli PROGRAM.hdl            # interactive: one query per line
//
// PROGRAM.hdl mixes rules and facts (ground, bodyless statements become
// database facts). Queries use the same premise syntax, e.g.
//   grad(tony)[add: take(tony, cs452)]
//   reach(a, c)[del: link(a, b)]
//   one_away(S)

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "engine/proof.h"
#include "engine/bottom_up.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "parser/parser.h"

namespace {

using namespace hypo;

std::unique_ptr<Engine> MakeEngineByName(const std::string& name,
                                         const RuleBase* rules,
                                         const Database* db, bool demand,
                                         int threads) {
  if (name == "stratified") {
    return std::make_unique<StratifiedProver>(rules, db);
  }
  if (name == "bottomup") {
    EngineOptions options;
    options.demand = demand;
    options.num_threads = threads;
    return std::make_unique<BottomUpEngine>(rules, db, options);
  }
  return std::make_unique<TabledEngine>(rules, db);
}

int PrintProof(TabledEngine* engine, SymbolTable* symbols,
               const std::string& text) {
  auto fact = ParseFact(text, symbols);
  if (!fact.ok()) {
    std::cerr << "--proof needs a ground atom: " << fact.status() << "\n";
    return 1;
  }
  auto proof = engine->ExplainFact(*fact);
  if (!proof.ok()) {
    std::cerr << proof.status() << "\n";
    return 1;
  }
  std::cout << ProofToString(*proof, *symbols);
  return 0;
}

int RunQuery(Engine* engine, SymbolTable* symbols, const std::string& text) {
  auto query = ParseQuery(text, symbols);
  if (!query.ok()) {
    std::cerr << "query error: " << query.status() << "\n";
    return 1;
  }
  if (query->num_vars() == 0) {
    auto r = engine->ProveQuery(*query);
    if (!r.ok()) {
      std::cerr << "evaluation error: " << r.status() << "\n";
      return 1;
    }
    std::cout << (*r ? "yes" : "no") << "\n";
    return 0;
  }
  auto answers = engine->Answers(*query);
  if (!answers.ok()) {
    std::cerr << "evaluation error: " << answers.status() << "\n";
    return 1;
  }
  if (answers->empty()) {
    std::cout << "no answers\n";
    return 0;
  }
  for (const Tuple& tuple : *answers) {
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) std::cout << ", ";
      std::cout << query->var_names[i] << " = "
                << symbols->ConstName(tuple[i]);
    }
    std::cout << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0]
              << " PROGRAM.hdl [-q QUERY]... [--engine NAME] [--demand]"
                 " [--threads N]\n";
    return 2;
  }
  std::string program_path;
  std::vector<std::string> queries;
  std::string engine_name = "tabled";
  bool explain = false;
  bool proof = false;
  bool demand = false;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-q" && i + 1 < argc) {
      queries.emplace_back(argv[++i]);
    } else if (arg == "--engine" && i + 1 < argc) {
      engine_name = argv[++i];
    } else if (arg == "--demand") {
      demand = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::cerr << "--threads needs a positive integer\n";
        return 2;
      }
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--proof") {
      proof = true;
    } else if (program_path.empty()) {
      program_path = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n";
      return 2;
    }
  }

  std::ifstream in(program_path);
  if (!in) {
    std::cerr << "cannot open " << program_path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto symbols = std::make_shared<SymbolTable>();
  auto program = ParseProgram(buffer.str(), symbols);
  if (!program.ok()) {
    std::cerr << "parse error: " << program.status() << "\n";
    return 1;
  }
  std::cerr << "loaded " << program->rules.num_rules() << " rules, "
            << program->facts.size() << " facts\n";

  if (explain) {
    std::cout << ExplainStratification(program->rules);
    if (queries.empty()) return 0;
  }

  if (demand && engine_name != "bottomup") {
    std::cerr << "--demand requires --engine bottomup\n";
    return 2;
  }
  if (threads > 1 && engine_name != "bottomup") {
    std::cerr << "--threads requires --engine bottomup\n";
    return 2;
  }
  auto engine = MakeEngineByName(engine_name, &program->rules,
                                 &program->facts, demand, threads);
  if (Status s = engine->Init(); !s.ok()) {
    std::cerr << "engine init (" << engine->name() << "): " << s << "\n";
    return 1;
  }

  int rc = 0;
  if (proof) {
    auto* tabled = dynamic_cast<TabledEngine*>(engine.get());
    if (tabled == nullptr) {
      std::cerr << "--proof requires --engine tabled\n";
      return 2;
    }
    for (const std::string& q : queries) {
      std::cout << "?- " << q << "\n";
      rc |= PrintProof(tabled, symbols.get(), q);
    }
    return rc;
  }
  if (!queries.empty()) {
    for (const std::string& q : queries) {
      std::cout << "?- " << q << "\n";
      rc |= RunQuery(engine.get(), symbols.get(), q);
    }
    return rc;
  }
  std::cerr << "enter queries, one per line (ctrl-d to quit)\n";
  std::string line;
  while (std::cout << "?- " && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    RunQuery(engine.get(), symbols.get(), line);
  }
  return 0;
}
