// Example 6: the parity rulebase — counting beyond Datalog.
//
// `even` is inferable iff the relation a(·) has an even number of tuples;
// [3] shows such queries cannot be expressed in ordinary Datalog. The
// rulebase copies a to b one tuple at a time, hypothetically, flipping
// between `even` and `odd`. Any copy order gives the same answer — the
// order-independence idea behind the §6 expressibility results.
//
// Usage: ./build/examples/parity_audit [max_n]

#include <cstdlib>
#include <iostream>

#include "ast/printer.h"
#include "engine/stratified_prover.h"
#include "engine/tabled.h"
#include "parser/parser.h"
#include "queries/parity.h"

int main(int argc, char** argv) {
  using namespace hypo;
  int max_n = argc > 1 ? std::atoi(argv[1]) : 10;

  {
    ProgramFixture preview = MakeParityFixture(0);
    std::cout << "Rulebase (Example 6):\n"
              << RuleBaseToString(preview.rules) << "\n";
  }

  std::cout << "|a|  even?  odd?   goals (stratified prover)\n";
  for (int n = 0; n <= max_n; ++n) {
    ProgramFixture fixture = MakeParityFixture(n);
    StratifiedProver prover(&fixture.rules, &fixture.db);
    if (Status s = prover.Init(); !s.ok()) {
      std::cerr << "init error: " << s << "\n";
      return 1;
    }
    auto even = ParseQuery("even", fixture.symbols.get());
    auto odd = ParseQuery("odd", fixture.symbols.get());
    auto is_even = prover.ProveQuery(*even);
    auto is_odd = prover.ProveQuery(*odd);
    if (!is_even.ok() || !is_odd.ok()) {
      std::cerr << "evaluation error\n";
      return 1;
    }
    std::cout << n << "    " << (*is_even ? "yes " : "no  ") << "  "
              << (*is_odd ? "yes " : "no  ") << "  "
              << prover.stats().goals_expanded << "\n";
    if (*is_even == *is_odd || *is_even != (n % 2 == 0)) {
      std::cerr << "parity mismatch at n=" << n << "\n";
      return 1;
    }
  }
  return 0;
}
