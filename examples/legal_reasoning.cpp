// Hypothetical rules in the legal domain (§1): Gabbay's British
// Nationality Act example — "you are eligible for citizenship if your
// father would be eligible if he were still alive" — plus a McCarty-style
// contract scenario. Both hinge on rules of the form A <- B[add: C].

#include <iostream>
#include <memory>

#include "engine/tabled.h"
#include "parser/parser.h"

int main() {
  using namespace hypo;
  auto symbols = std::make_shared<SymbolTable>();

  auto rules = ParseRuleBase(R"(
    % Citizenship by birth and residence.
    eligible(X) <- born_in_uk(X), alive(X).
    % The Act's hypothetical clause: X is eligible if X's father would be
    % eligible were he still alive.
    eligible(X) <- father(F, X), eligible(F)[add: alive(F)].

    % A McCarty-style contract clause: a party is in breach if, supposing
    % the notice had been delivered, the deadline obligation would bind.
    obligated(P) <- notified(P), deadline_passed.
    in_breach(P) <- party(P), ~performed(P),
                    obligated(P)[add: notified(P)].
  )", symbols);
  if (!rules.ok()) {
    std::cerr << "parse error: " << rules.status() << "\n";
    return 1;
  }

  Database db(symbols);
  Status s = ParseFactsInto(R"(
    % George was born in the UK but has died; his daughter Ada was not
    % born in the UK.
    born_in_uk(george).
    father(george, ada).

    % Contract: two parties, the deadline has passed, only one performed.
    party(acme).
    party(zenith).
    performed(acme).
    deadline_passed.
  )", &db);
  if (!s.ok()) {
    std::cerr << "facts error: " << s << "\n";
    return 1;
  }

  TabledEngine engine(&*rules, &db);
  if (Status init = engine.Init(); !init.ok()) {
    std::cerr << "init error: " << init << "\n";
    return 1;
  }

  auto ask = [&](const char* text) {
    auto query = ParseQuery(text, symbols.get());
    auto r = engine.ProveQuery(*query);
    std::cout << "  " << text << "  ->  " << (*r ? "yes" : "no") << "\n";
    return *r;
  };

  std::cout << "British Nationality Act (Gabbay, §1):\n";
  bool george = ask("eligible(george)");
  bool ada = ask("eligible(ada)");

  std::cout << "\nContract breach (McCarty-style):\n";
  bool acme = ask("in_breach(acme)");
  bool zenith = ask("in_breach(zenith)");

  // George is dead (not eligible today), yet Ada is eligible because he
  // *would* be were he alive. Zenith is in breach, Acme performed.
  if (george || !ada || acme || !zenith) {
    std::cerr << "unexpected verdicts\n";
    return 1;
  }
  return 0;
}
