// Example 7/8: deciding Hamiltonian paths with a hypothetical rulebase.
//
// The rulebase records visited nodes by hypothetically inserting
// pnode(·) facts — the ability that makes hypothetical Datalog NP-hard at
// one stratum — and Example 8's single extra rule `no <- ~yes.` decides
// the complement (a second stratum).
//
// Usage: ./build/examples/hamiltonian [num_vertices] [edge_probability]

#include <cstdlib>
#include <iostream>

#include "base/random.h"
#include "base/stopwatch.h"
#include "ast/printer.h"
#include "engine/stratified_prover.h"
#include "parser/parser.h"
#include "queries/hamiltonian.h"

int main(int argc, char** argv) {
  using namespace hypo;
  int n = argc > 1 ? std::atoi(argv[1]) : 6;
  double p = argc > 2 ? std::atof(argv[2]) : 0.4;

  std::cout << "Random directed graph: " << n << " vertices, edge "
            << "probability " << p << "\n\n";
  Random rng(/*seed=*/42);
  Graph graph = MakeRandomGraph(n, p, &rng);

  ProgramFixture fixture =
      MakeHamiltonianFixture(graph, /*with_no_rule=*/true);
  std::cout << "Rulebase (Examples 7 and 8):\n"
            << RuleBaseToString(fixture.rules) << "\n";

  StratifiedProver prover(&fixture.rules, &fixture.db);
  if (Status s = prover.Init(); !s.ok()) {
    std::cerr << "init error: " << s << "\n";
    return 1;
  }
  std::cout << "Linear stratification: " << prover.stratification().num_strata
            << " strata (yes in Σ1, no above it)\n\n";

  Stopwatch watch;
  auto yes = ParseQuery("yes", fixture.symbols.get());
  auto has_path = prover.ProveQuery(*yes);
  if (!has_path.ok()) {
    std::cerr << "evaluation error: " << has_path.status() << "\n";
    return 1;
  }
  double rulebase_seconds = watch.ElapsedSeconds();

  watch.Reset();
  bool baseline = HamiltonianPathExists(graph);
  double baseline_seconds = watch.ElapsedSeconds();

  std::cout << "Rulebase verdict:  " << (*has_path ? "yes" : "no") << "  ("
            << rulebase_seconds * 1e3 << " ms, "
            << prover.stats().goals_expanded << " goals)\n";
  std::cout << "Direct backtracking baseline: "
            << (baseline ? "yes" : "no") << "  (" << baseline_seconds * 1e3
            << " ms)\n";

  auto no = ParseQuery("no", fixture.symbols.get());
  auto complement = prover.ProveQuery(*no);
  std::cout << "Complement (Example 8's `no`): "
            << (*complement ? "yes" : "no") << "\n";

  if (*has_path != baseline || *complement == *has_path) {
    std::cerr << "MISMATCH between rulebase and baseline!\n";
    return 1;
  }
  return 0;
}
