// hypo_serve: resident query server over a hypothetical-Datalog program.
//
//   hypo_serve PROGRAM.hdl [--engine tabled|stratified|bottomup]
//              [--pool N] [--threads N] [--timeout-ms N] [--max-memory-mb N]
//              [--data-dir DIR] [--fsync always|group|off]
//              [--checkpoint-every N]
//
// Reads the line protocol (see src/server/protocol.h) from stdin and
// writes one `ok`/`err` response block per command to stdout:
//
//   $ hypo_serve program.hdl <<'EOF'
//   query reach(a, X)
//   insert edge(c, d)
//   query reach(a, X)
//   retract edge(a, b)
//   query reach(a, X)
//   shutdown
//   EOF
//
// The server keeps one shared base database and a pool of warm engines;
// insert/retract turn the epoch and repair the engines' memoized models
// incrementally (bottomup: DRed delete-and-rederive) instead of
// recomputing from scratch. --timeout-ms / --max-memory-mb set per-query
// governance defaults that a session can override with `set`.
//
// --data-dir makes the server crash-safe: every committed mutation batch
// is journaled ahead of application and periodic checkpoints
// (--checkpoint-every N epoch turns) bound replay; restarting with the
// same --data-dir recovers the acknowledged state. --fsync picks the
// journal flush policy (always = per batch, group = amortized, off =
// checkpoint/shutdown only). SIGINT/SIGTERM drain in-flight queries,
// flush the journal, write a final checkpoint, and exit 3.
//
// Exit codes: 0 clean shutdown or EOF, 1 startup error, 2 usage error,
// 3 terminated by signal after a clean drain.

#include <csignal>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include "base/string_util.h"
#include "server/protocol.h"
#include "server/query_server.h"

namespace {

using namespace hypo;

/// Set by the SIGINT/SIGTERM handler; RunSession polls it between
/// commands, and the handlers are installed without SA_RESTART so a
/// signal also interrupts a blocked stdin read.
std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

void InstallStopHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // No SA_RESTART: interrupt the blocking getline.
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

/// Strict positive-integer flag parsing shared with hypo_cli's checks:
/// `--pool 4abc` and overflowing values are usage errors (exit 2), not
/// silently truncated atoi results.
bool ParsePositiveFlag(const char* flag, const char* value, long* out,
                       long max = std::numeric_limits<int32_t>::max()) {
  auto parsed = ParseInt(value, 1, max);
  if (!parsed.ok()) {
    std::cerr << flag << " needs a positive integer: " << parsed.status()
              << "\n";
    return false;
  }
  *out = static_cast<long>(*parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0]
              << " PROGRAM.hdl [--engine NAME] [--pool N] [--threads N]"
                 " [--timeout-ms N] [--max-memory-mb N]"
                 " [--no-cross-cache] [--cache-mb N]"
                 " [--executor vm|interp]"
                 " [--data-dir DIR] [--fsync always|group|off]"
                 " [--checkpoint-every N]\n";
    return 2;
  }
  // A mistyped storage backend must fail the launch, not silently serve
  // every epoch from the default backend; same for HYPO_EXEC.
  if (Status s = Database::ValidateStorageEnv(); !s.ok()) {
    std::cerr << "storage: " << s << "\n";
    return 2;
  }
  if (Status s = ValidateExecutorEnv(); !s.ok()) {
    std::cerr << "executor: " << s << "\n";
    return 2;
  }
  std::string program_path;
  ServerOptions options;
  long timeout_ms = 0;
  long max_memory_mb = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--engine" && i + 1 < argc) {
      options.engine_name = argv[++i];
    } else if (arg == "--executor" && i + 1 < argc) {
      std::string name = argv[++i];
      if (name != "vm" && name != "interp") {
        std::cerr << "--executor must be \"vm\" or \"interp\"\n";
        return 2;
      }
      options.engine_options.executor =
          name == "interp" ? ExecutorKind::kInterp : ExecutorKind::kVm;
    } else if (arg == "--no-cross-cache") {
      options.cross_query_cache = false;
    } else if (arg == "--cache-mb" && i + 1 < argc) {
      long value = 0;
      if (!ParsePositiveFlag("--cache-mb", argv[++i], &value)) return 2;
      options.cache_bytes = value * 1024 * 1024;
    } else if (arg == "--pool" && i + 1 < argc) {
      long value = 0;
      if (!ParsePositiveFlag("--pool", argv[++i], &value, 64)) return 2;
      options.pool_size = static_cast<int>(value);
    } else if (arg == "--threads" && i + 1 < argc) {
      long value = 0;
      if (!ParsePositiveFlag("--threads", argv[++i], &value, 1024)) return 2;
      options.engine_options.num_threads = static_cast<int>(value);
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      if (!ParsePositiveFlag("--timeout-ms", argv[++i], &timeout_ms)) {
        return 2;
      }
    } else if (arg == "--max-memory-mb" && i + 1 < argc) {
      if (!ParsePositiveFlag("--max-memory-mb", argv[++i], &max_memory_mb)) {
        return 2;
      }
    } else if (arg == "--data-dir" && i + 1 < argc) {
      options.durability.data_dir = argv[++i];
    } else if (arg == "--fsync" && i + 1 < argc) {
      auto policy = Journal::ParsePolicy(argv[++i]);
      if (!policy.ok()) {
        std::cerr << "--fsync: " << policy.status() << "\n";
        return 2;
      }
      options.durability.fsync_policy = *policy;
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      long value = 0;
      if (!ParsePositiveFlag("--checkpoint-every", argv[++i], &value)) {
        return 2;
      }
      options.durability.checkpoint_every = value;
    } else if (program_path.empty()) {
      program_path = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n";
      return 2;
    }
  }
  if (options.engine_options.num_threads > 1 &&
      options.engine_name != "bottomup") {
    std::cerr << "--threads requires --engine bottomup\n";
    return 2;
  }
  options.engine_options.timeout_micros = timeout_ms * 1000;
  options.engine_options.max_memory_bytes = max_memory_mb * 1024 * 1024;

  std::ifstream in(program_path);
  if (!in) {
    std::cerr << "cannot open " << program_path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  InstallStopHandlers();

  auto server = QueryServer::Create(buffer.str(), options);
  if (!server.ok()) {
    std::cerr << "server startup: " << server.status() << "\n";
    return 1;
  }
  std::cerr << "hypo_serve ready: engine=" << (*server)->options().engine_name
            << " pool=" << (*server)->options().pool_size
            << " epoch=" << (*server)->epoch();
  if (!options.durability.data_dir.empty()) {
    std::cerr << " data_dir=" << options.durability.data_dir << " fsync="
              << Journal::PolicyName(options.durability.fsync_policy);
  }
  std::cerr << "\n";
  int code = RunSession(server->get(), std::cin, std::cout, &g_stop);
  // Drain and persist regardless of how the session ended — EOF, an
  // explicit `shutdown`, or a stop signal. Shutdown is a no-op when
  // durability is off.
  if (Status s = (*server)->Shutdown(); !s.ok()) {
    std::cerr << "shutdown: " << s << "\n";
  }
  if (g_stop.load(std::memory_order_relaxed)) {
    std::cerr << "hypo_serve: drained after signal\n";
    return 3;
  }
  return code;
}
